#include "net/frame.h"

#include <bit>
#include <cstring>

#include "util/socket.h"

namespace prsim {
namespace net {

static_assert(std::endian::native == std::endian::little,
              "the wire framing writes host-endian integers and is only "
              "deployed same-host; port the codec before crossing archs");
static_assert(sizeof(double) == 8);

namespace {

constexpr uint8_t kFlagFreshSeed = 1u << 0;
constexpr uint8_t kFlagExplicitPosition = 1u << 1;
constexpr uint8_t kFlagHasDeadline = 1u << 2;

template <typename T>
void Append(std::vector<char>* out, T value) {
  const size_t at = out->size();
  out->resize(at + sizeof(T));
  std::memcpy(out->data() + at, &value, sizeof(T));
}

void AppendBytes(std::vector<char>* out, const void* data, size_t len) {
  const size_t at = out->size();
  out->resize(at + len);
  std::memcpy(out->data() + at, data, len);
}

/// Bounds-checked sequential reader over a payload.
class Cursor {
 public:
  explicit Cursor(const std::vector<char>& payload) : payload_(payload) {}

  template <typename T>
  bool Read(T* value) {
    if (payload_.size() - at_ < sizeof(T)) return false;
    std::memcpy(value, payload_.data() + at_, sizeof(T));
    at_ += sizeof(T);
    return true;
  }

  bool ReadString(size_t len, std::string* value) {
    if (payload_.size() - at_ < len) return false;
    value->assign(payload_.data() + at_, len);
    at_ += len;
    return true;
  }

  bool exhausted() const { return at_ == payload_.size(); }

 private:
  const std::vector<char>& payload_;
  size_t at_ = 0;
};

Status Truncated(const char* what) {
  return Status::InvalidArgument(std::string("truncated ") + what +
                                 " frame payload");
}

}  // namespace

void EncodeRequest(const WireRequest& request, std::vector<char>* out) {
  out->clear();
  // Deadline-free requests stay version-1 byte-identical — the upgrade is
  // invisible to old decoders until a deadline actually travels.
  const bool has_deadline =
      request.deadline_ms != QueryRequest::kNoDeadline;
  Append<uint8_t>(out, has_deadline ? kFrameVersionDeadline : kFrameVersion);
  uint8_t flags = 0;
  if (request.fresh_seed) flags |= kFlagFreshSeed;
  if (request.seed_position != QueryRequest::kServiceOrder) {
    flags |= kFlagExplicitPosition;
  }
  if (has_deadline) flags |= kFlagHasDeadline;
  Append<uint8_t>(out, flags);
  Append<uint16_t>(out, static_cast<uint16_t>(request.algo.size()));
  Append<uint32_t>(out, request.source);
  Append<uint32_t>(out, request.k);
  Append<uint64_t>(out, request.seed_position);
  if (has_deadline) {
    const uint64_t clamped =
        request.deadline_ms > UINT32_MAX ? UINT32_MAX : request.deadline_ms;
    Append<uint32_t>(out, static_cast<uint32_t>(clamped));
  }
  AppendBytes(out, request.algo.data(), request.algo.size());
}

void EncodeResponse(const WireResponse& response, std::vector<char>* out) {
  out->clear();
  Append<uint8_t>(out, kFrameVersion);
  Append<uint8_t>(out, response.status_code);
  Append<uint16_t>(out, 0);
  Append<uint32_t>(out, response.source);
  Append<uint32_t>(out, static_cast<uint32_t>(response.scores.size()));
  Append<uint32_t>(out, static_cast<uint32_t>(response.error.size()));
  for (const auto& [node, score] : response.scores) {
    Append<uint32_t>(out, node);
    Append<double>(out, score);
  }
  AppendBytes(out, response.error.data(), response.error.size());
}

Result<WireRequest> DecodeRequest(const std::vector<char>& payload) {
  Cursor cursor(payload);
  uint8_t version = 0, flags = 0;
  uint16_t algo_len = 0;
  WireRequest request;
  if (!cursor.Read(&version) || !cursor.Read(&flags) ||
      !cursor.Read(&algo_len) || !cursor.Read(&request.source) ||
      !cursor.Read(&request.k) || !cursor.Read(&request.seed_position)) {
    return Truncated("request");
  }
  if (version != kFrameVersion && version != kFrameVersionDeadline) {
    return Status::InvalidArgument("unsupported request frame version " +
                                   std::to_string(version));
  }
  if (version >= kFrameVersionDeadline) {
    uint32_t deadline_ms = 0;
    if (!cursor.Read(&deadline_ms)) return Truncated("request");
    // The field is always present in a v2 frame; the flag says whether it
    // means anything (a v2 encoder that clears the deadline mid-stream
    // need not drop back to v1).
    if ((flags & kFlagHasDeadline) != 0) request.deadline_ms = deadline_ms;
  }
  if (!cursor.ReadString(algo_len, &request.algo) || !cursor.exhausted()) {
    return Truncated("request");
  }
  request.fresh_seed = (flags & kFlagFreshSeed) != 0;
  if ((flags & kFlagExplicitPosition) == 0) {
    request.seed_position = QueryRequest::kServiceOrder;
  }
  return request;
}

Result<WireResponse> DecodeResponse(const std::vector<char>& payload) {
  Cursor cursor(payload);
  uint8_t version = 0, status_code = 0;
  uint16_t reserved = 0;
  uint32_t score_count = 0, error_len = 0;
  WireResponse response;
  if (!cursor.Read(&version) || !cursor.Read(&status_code) ||
      !cursor.Read(&reserved) || !cursor.Read(&response.source) ||
      !cursor.Read(&score_count) || !cursor.Read(&error_len)) {
    return Truncated("response");
  }
  if (version != kFrameVersion) {
    return Status::InvalidArgument("unsupported response frame version " +
                                   std::to_string(version));
  }
  response.status_code = status_code;
  // score_count is bounded by the already-validated payload length; the
  // reserve below cannot overshoot the frame cap.
  if ((payload.size() - 16) / 12 < score_count) {
    return Truncated("response");
  }
  response.scores.reserve(score_count);
  for (uint32_t i = 0; i < score_count; ++i) {
    uint32_t node = 0;
    double score = 0;
    if (!cursor.Read(&node) || !cursor.Read(&score)) {
      return Truncated("response");
    }
    response.scores.emplace_back(node, score);
  }
  if (!cursor.ReadString(error_len, &response.error) || !cursor.exhausted()) {
    return Truncated("response");
  }
  return response;
}

Status WriteFrame(int fd, const std::vector<char>& payload) {
  if (payload.size() > kMaxFramePayload) {
    return Status::InvalidArgument("frame payload too large: " +
                                   std::to_string(payload.size()));
  }
  const auto length = static_cast<uint32_t>(payload.size());
  PRSIM_RETURN_NOT_OK(WriteAll(fd, &length, sizeof(length)));
  return WriteAll(fd, payload.data(), payload.size());
}

Status ReadFrame(int fd, std::vector<char>* payload, bool* eof) {
  uint32_t length = 0;
  PRSIM_RETURN_NOT_OK(ReadFull(fd, &length, sizeof(length), eof));
  if (*eof) return Status::OK();
  if (length > kMaxFramePayload) {
    return Status::InvalidArgument("frame length " + std::to_string(length) +
                                   " exceeds the " +
                                   std::to_string(kMaxFramePayload) +
                                   "-byte cap");
  }
  payload->resize(length);
  bool mid_eof = false;
  PRSIM_RETURN_NOT_OK(ReadFull(fd, payload->data(), length, &mid_eof));
  if (mid_eof) return Status::IOError("connection closed mid-frame");
  return Status::OK();
}

}  // namespace net
}  // namespace prsim
