#include "net/serve_loop.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <utility>
#include <vector>

#include "util/parse.h"

namespace prsim {
namespace net {

std::string TrimRequestLine(const std::string& line) {
  const auto first = line.find_first_not_of(" \t\r\n");
  if (first == std::string::npos || line[first] == '#') return "";
  const auto last = line.find_last_not_of(" \t\r\n");
  return line.substr(first, last - first + 1);
}

Status ParseServeLine(const std::string& trimmed, NodeId n,
                      uint32_t default_k, NodeId* source, uint32_t* k,
                      uint64_t* deadline_ms) {
  // Tokenize on whitespace without an istringstream: this runs once per
  // request on the serving hot path, and a request is at most 3 tokens.
  std::vector<std::string> tokens;
  size_t at = 0;
  while (at != std::string::npos && at < trimmed.size()) {
    const auto end = trimmed.find_first_of(" \t", at);
    tokens.push_back(trimmed.substr(at, end - at));
    at = end == std::string::npos ? end
                                  : trimmed.find_first_not_of(" \t", end);
  }
  uint64_t source_value = 0;
  if (!ParseUint64(tokens[0], &source_value) || source_value >= n) {
    return Status::InvalidArgument("invalid node id '" + tokens[0] +
                                   "' (n = " + std::to_string(n) + ")");
  }
  *source = static_cast<NodeId>(source_value);
  *k = default_k;
  *deadline_ms = QueryRequest::kNoDeadline;
  bool have_k = false;
  bool have_deadline = false;
  static constexpr char kDeadlinePrefix[] = "deadline_ms=";
  static constexpr size_t kDeadlinePrefixLen = sizeof(kDeadlinePrefix) - 1;
  for (size_t i = 1; i < tokens.size(); ++i) {
    const std::string& token = tokens[i];
    if (token.compare(0, kDeadlinePrefixLen, kDeadlinePrefix) == 0) {
      uint64_t deadline_value = 0;
      const std::string value = token.substr(kDeadlinePrefixLen);
      if (have_deadline || !ParseUint64(value, &deadline_value)) {
        return Status::InvalidArgument("invalid deadline_ms '" + value +
                                       "'");
      }
      // deadline_ms=0 is legal: an already-expired request, resolved with
      // kDeadlineExceeded at admission.
      *deadline_ms = deadline_value;
      have_deadline = true;
      continue;
    }
    if (have_k) {
      return Status::InvalidArgument(
          "expected \"<source> [k] [deadline_ms=N]\", got '" + trimmed +
          "'");
    }
    uint64_t k_value = 0;
    if (!ParseUint64(token, &k_value) || k_value == 0 ||
        k_value > UINT32_MAX) {
      return Status::InvalidArgument("invalid k '" + token + "'");
    }
    *k = static_cast<uint32_t>(k_value);
    have_k = true;
  }
  return Status::OK();
}

std::string FormatResultLine(NodeId source, const ScoreList& scores) {
  std::string line = "result " + std::to_string(source);
  char buffer[64];
  for (size_t i = 0; i < scores.size(); ++i) {
    std::snprintf(buffer, sizeof(buffer), "%c%u:%.6g", i == 0 ? ' ' : ',',
                  scores[i].first, scores[i].second);
    line += buffer;
  }
  return line;
}

PipelinedDispatcher::PipelinedDispatcher(size_t window, SubmitFn submit,
                                         RespondFn respond)
    : window_(window == 0 ? 1 : window),
      submit_(std::move(submit)),
      respond_(std::move(respond)),
      responder_(&PipelinedDispatcher::ResponderLoop, this) {}

PipelinedDispatcher::~PipelinedDispatcher() { DrainAll(); }

void PipelinedDispatcher::ResponderLoop() {
  while (true) {
    Pending p;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return !pending_.empty() || stopping_; });
      if (pending_.empty()) return;  // stopping_ and fully drained
      p = std::move(pending_.front());
      pending_.pop_front();
    }
    // get() outside the lock: the dispatching thread must stay free to
    // submit (and the window check counts this response as already gone —
    // close enough for a flow-control bound).
    const QueryResult result = p.future.get();
    if (!result.status.ok()) {
      std::lock_guard<std::mutex> lock(mu_);
      ++failed_;
    }
    respond_(p.id, p.source, result);
    cv_.notify_all();
  }
}

void PipelinedDispatcher::Dispatch(uint64_t id, QueryRequest request) {
  const NodeId source = request.source;
  {
    // Window gate before submitting, so the bound also covers the service
    // queue slot the submit itself will take.
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return pending_.size() < window_; });
  }
  std::future<QueryResult> future = submit_(std::move(request));
  {
    std::lock_guard<std::mutex> lock(mu_);
    pending_.push_back({id, source, std::move(future)});
  }
  cv_.notify_all();
}

void PipelinedDispatcher::DrainAll() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  if (responder_.joinable()) responder_.join();
}

size_t PipelinedDispatcher::failed_responses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return failed_;
}

size_t ServeLineLoop(NodeId n, uint32_t default_k, size_t window,
                     const SubmitFn& submit, const LineTransport& transport) {
  size_t bad_lines = 0;
  size_t line_no = 0;
  // Failed queries are reported against the line that submitted them; the
  // dispatcher's id is the 1-based line number.
  PipelinedDispatcher dispatcher(
      window, submit,
      [&](uint64_t id, NodeId source, const QueryResult& result) {
        if (!result.status.ok()) {
          transport.report_error(static_cast<size_t>(id),
                                 result.status.ToString());
          return;
        }
        transport.write_line(FormatResultLine(source, result.scores));
      });

  std::string line;
  while (transport.read_line(&line)) {
    ++line_no;
    const std::string trimmed = TrimRequestLine(line);
    if (trimmed.empty()) continue;
    QueryRequest request;
    if (Status st = ParseServeLine(trimmed, n, default_k, &request.source,
                                   &request.k, &request.deadline_ms);
        !st.ok()) {
      // Parse errors report the bare message (matching the historical stdin
      // loop); failed queries report the full "<Code>: <message>" status.
      transport.report_error(line_no, st.message());
      ++bad_lines;
      continue;
    }
    dispatcher.Dispatch(line_no, std::move(request));
  }
  dispatcher.DrainAll();
  return bad_lines + dispatcher.failed_responses();
}

}  // namespace net
}  // namespace prsim
