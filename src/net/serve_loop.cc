#include "net/serve_loop.h"

#include <chrono>
#include <cstdio>
#include <utility>

#include "util/parse.h"

namespace prsim {
namespace net {

std::string TrimRequestLine(const std::string& line) {
  const auto first = line.find_first_not_of(" \t\r\n");
  if (first == std::string::npos || line[first] == '#') return "";
  const auto last = line.find_last_not_of(" \t\r\n");
  return line.substr(first, last - first + 1);
}

Status ParseServeLine(const std::string& trimmed, NodeId n,
                      uint32_t default_k, NodeId* source, uint32_t* k) {
  // Split on whitespace without an istringstream: this runs once per
  // request on the serving hot path.
  const auto split = trimmed.find_first_of(" \t");
  const std::string source_token = trimmed.substr(0, split);
  std::string k_token;
  if (split != std::string::npos) {
    const auto k_start = trimmed.find_first_not_of(" \t", split);
    if (k_start != std::string::npos) {
      const auto k_end = trimmed.find_first_of(" \t", k_start);
      k_token = trimmed.substr(k_start, k_end - k_start);
      if (k_end != std::string::npos &&
          trimmed.find_first_not_of(" \t", k_end) != std::string::npos) {
        return Status::InvalidArgument("expected \"<source> [k]\", got '" +
                                       trimmed + "'");
      }
    }
  }
  uint64_t source_value = 0;
  if (!ParseUint64(source_token, &source_value) || source_value >= n) {
    return Status::InvalidArgument("invalid node id '" + source_token +
                                   "' (n = " + std::to_string(n) + ")");
  }
  *source = static_cast<NodeId>(source_value);
  *k = default_k;
  if (!k_token.empty()) {
    uint64_t k_value = 0;
    if (!ParseUint64(k_token, &k_value) || k_value == 0 ||
        k_value > UINT32_MAX) {
      return Status::InvalidArgument("invalid k '" + k_token + "'");
    }
    *k = static_cast<uint32_t>(k_value);
  }
  return Status::OK();
}

std::string FormatResultLine(NodeId source, const ScoreList& scores) {
  std::string line = "result " + std::to_string(source);
  char buffer[64];
  for (size_t i = 0; i < scores.size(); ++i) {
    std::snprintf(buffer, sizeof(buffer), "%c%u:%.6g", i == 0 ? ' ' : ',',
                  scores[i].first, scores[i].second);
    line += buffer;
  }
  return line;
}

PipelinedDispatcher::PipelinedDispatcher(size_t window, SubmitFn submit,
                                         RespondFn respond)
    : window_(window == 0 ? 1 : window),
      submit_(std::move(submit)),
      respond_(std::move(respond)),
      responder_(&PipelinedDispatcher::ResponderLoop, this) {}

PipelinedDispatcher::~PipelinedDispatcher() { DrainAll(); }

void PipelinedDispatcher::ResponderLoop() {
  while (true) {
    Pending p;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return !pending_.empty() || stopping_; });
      if (pending_.empty()) return;  // stopping_ and fully drained
      p = std::move(pending_.front());
      pending_.pop_front();
    }
    // get() outside the lock: the dispatching thread must stay free to
    // submit (and the window check counts this response as already gone —
    // close enough for a flow-control bound).
    const QueryResult result = p.future.get();
    if (!result.status.ok()) {
      std::lock_guard<std::mutex> lock(mu_);
      ++failed_;
    }
    respond_(p.id, p.source, result);
    cv_.notify_all();
  }
}

void PipelinedDispatcher::Dispatch(uint64_t id, QueryRequest request) {
  const NodeId source = request.source;
  {
    // Window gate before submitting, so the bound also covers the service
    // queue slot the submit itself will take.
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return pending_.size() < window_; });
  }
  std::future<QueryResult> future = submit_(std::move(request));
  {
    std::lock_guard<std::mutex> lock(mu_);
    pending_.push_back({id, source, std::move(future)});
  }
  cv_.notify_all();
}

void PipelinedDispatcher::DrainAll() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  if (responder_.joinable()) responder_.join();
}

size_t PipelinedDispatcher::failed_responses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return failed_;
}

size_t ServeLineLoop(NodeId n, uint32_t default_k, size_t window,
                     const SubmitFn& submit, const LineTransport& transport) {
  size_t bad_lines = 0;
  size_t line_no = 0;
  // Failed queries are reported against the line that submitted them; the
  // dispatcher's id is the 1-based line number.
  PipelinedDispatcher dispatcher(
      window, submit,
      [&](uint64_t id, NodeId source, const QueryResult& result) {
        if (!result.status.ok()) {
          transport.report_error(static_cast<size_t>(id),
                                 result.status.ToString());
          return;
        }
        transport.write_line(FormatResultLine(source, result.scores));
      });

  std::string line;
  while (transport.read_line(&line)) {
    ++line_no;
    const std::string trimmed = TrimRequestLine(line);
    if (trimmed.empty()) continue;
    QueryRequest request;
    if (Status st = ParseServeLine(trimmed, n, default_k, &request.source,
                                   &request.k);
        !st.ok()) {
      // Parse errors report the bare message (matching the historical stdin
      // loop); failed queries report the full "<Code>: <message>" status.
      transport.report_error(line_no, st.message());
      ++bad_lines;
      continue;
    }
    dispatcher.Dispatch(line_no, std::move(request));
  }
  dispatcher.DrainAll();
  return bad_lines + dispatcher.failed_responses();
}

}  // namespace net
}  // namespace prsim
