// Wire protocol of the TCP serving front end.
//
// A connection speaks one of two framings, chosen by the client's first
// bytes:
//   - binary: the client opens with the 4-byte magic "PRSB", then exchanges
//     length-prefixed frames. Scores travel as raw IEEE-754 doubles, so a
//     response is bit-identical to the answering engine's in-process result
//     — the property the offline-vs-wire CI diff checks.
//   - text: anything else is the line protocol `serve --stdin` speaks
//     ("<source> [k]" in, "result <source> <node>:<score>,..." out), so
//     `nc` and shell loops work unchanged against the TCP transport.
//
// Frame layout (all integers little-endian host order — this is a
// same-host/same-arch transport, asserted at compile time):
//   uint32 payload_length  (bounded by kMaxFramePayload)
//   payload:
//     request:  u8 version, u8 flags (bit0 fresh_seed, bit1 explicit
//               seed_position, bit2 has_deadline), u16 algo_len,
//               u32 source, u32 k, u64 seed_position,
//               [v2: u32 deadline_ms], algo bytes
//     response: u8 version, u8 status_code (StatusCode), u16 reserved,
//               u32 source, u32 score_count, u32 error_len,
//               score_count x { u32 node, f64 score }, error bytes
//
// Request versioning: version 1 has no deadline field; version 2 appends a
// u32 deadline_ms after seed_position, meaningful only when the
// has_deadline flag is set. The encoder emits version 1 for deadline-free
// requests (old servers keep working untouched) and version 2 only when a
// deadline travels; the decoder accepts both.
//
// Encode/decode are pure byte-vector transforms (unit-testable without a
// socket); ReadFrame/WriteFrame do the fd I/O.

#ifndef PRSIM_NET_FRAME_H_
#define PRSIM_NET_FRAME_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/query_service.h"
#include "core/single_source.h"
#include "util/status.h"

namespace prsim {
namespace net {

inline constexpr char kBinaryMagic[4] = {'P', 'R', 'S', 'B'};
inline constexpr uint8_t kFrameVersion = 1;
/// Request-frame version carrying the optional deadline_ms field.
inline constexpr uint8_t kFrameVersionDeadline = 2;
/// Upper bound on one frame's payload: a full single-source result on a
/// 16M-node graph fits with room to spare; anything larger is a corrupt or
/// hostile length prefix, rejected before allocation.
inline constexpr uint32_t kMaxFramePayload = 256u << 20;

/// One query request as it travels on the wire; mirrors QueryRequest.
struct WireRequest {
  std::string algo;  ///< empty = the server's default engine
  NodeId source = 0;
  uint32_t k = 0;  ///< 0 = full single-source result
  uint64_t seed_position = QueryRequest::kServiceOrder;
  bool fresh_seed = false;
  /// Relative deadline budget (QueryRequest::kNoDeadline = none). Travels
  /// as a u32 in version-2 frames; the encoder clamps larger finite
  /// budgets to u32 max (~49 days — far beyond any real query budget).
  uint64_t deadline_ms = QueryRequest::kNoDeadline;

  QueryRequest ToQueryRequest() const {
    QueryRequest request;
    request.algo = algo;
    request.source = source;
    request.k = k;
    request.seed_position = seed_position;
    request.fresh_seed = fresh_seed;
    request.deadline_ms = deadline_ms;
    return request;
  }
};

/// One response as it travels on the wire. `status_code` is the StatusCode
/// integer (0 = OK); `error` carries the message for non-OK codes.
struct WireResponse {
  uint8_t status_code = 0;
  std::string error;
  NodeId source = 0;
  ScoreList scores;
};

/// Serializes the payload (no length prefix) into *out, replacing it.
void EncodeRequest(const WireRequest& request, std::vector<char>* out);
void EncodeResponse(const WireResponse& response, std::vector<char>* out);

/// Parses a payload produced by the encoder. Truncated, oversized, or
/// version-mismatched payloads are kInvalidArgument.
Result<WireRequest> DecodeRequest(const std::vector<char>& payload);
Result<WireResponse> DecodeResponse(const std::vector<char>& payload);

/// Writes one length-prefixed frame.
Status WriteFrame(int fd, const std::vector<char>& payload);

/// Reads one length-prefixed frame into *payload. Clean EOF at a frame
/// boundary sets *eof; EOF inside a frame or an oversized length prefix is
/// an error.
Status ReadFrame(int fd, std::vector<char>* payload, bool* eof);

}  // namespace net
}  // namespace prsim

#endif  // PRSIM_NET_FRAME_H_
