// Edge-list canonicalization and Graph construction policies.

#ifndef PRSIM_GRAPH_BUILDER_H_
#define PRSIM_GRAPH_BUILDER_H_

#include <vector>

#include "graph/graph.h"
#include "util/status.h"

namespace prsim {

/// Construction policies applied before CSR conversion.
struct BuildOptions {
  /// Remove duplicate (src, dst) pairs. SimRank semantics assume simple
  /// in-neighbor sets; all paper datasets are simple graphs.
  bool deduplicate = true;
  /// Remove self-loops (u, u). A self-loop would let a sqrt(c)-walk "meet
  /// itself", which the SimRank definition excludes.
  bool remove_self_loops = true;
  /// Treat the input as undirected: for every (u, v) also add (v, u).
  bool undirected = false;
  /// Renumber nodes to the compact range [0, #distinct endpoints). When
  /// false, node ids are kept and n = max id + 1 (or the explicit n).
  bool compact_ids = false;
};

/// \brief Accumulates edges and produces an immutable Graph.
///
/// Typical use:
///   GraphBuilder b;
///   b.AddEdge(0, 1);
///   ...
///   auto g = b.Build(options).ValueOrDie();
class GraphBuilder {
 public:
  GraphBuilder() = default;

  /// Reserves space for an expected number of edges.
  void Reserve(size_t edges) { edges_.reserve(edges); }

  void AddEdge(NodeId src, NodeId dst) { edges_.emplace_back(src, dst); }

  void AddEdges(const std::vector<Edge>& edges) {
    edges_.insert(edges_.end(), edges.begin(), edges.end());
  }

  /// Declares that the graph has at least n nodes even if ids above the
  /// maximum endpoint never appear.
  void EnsureNodeCount(NodeId n) { min_n_ = std::max(min_n_, n); }

  size_t edge_count() const { return edges_.size(); }

  /// Applies the options and produces the Graph. The builder keeps its edges
  /// so Build may be called again with different options.
  Result<Graph> Build(const BuildOptions& options = BuildOptions()) const;

 private:
  std::vector<Edge> edges_;
  NodeId min_n_ = 0;
};

/// Convenience wrapper: canonicalize `edges` per `options` and build.
Result<Graph> BuildGraph(NodeId n, std::vector<Edge> edges,
                         const BuildOptions& options = BuildOptions());

}  // namespace prsim

#endif  // PRSIM_GRAPH_BUILDER_H_
