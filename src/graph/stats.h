// Degree and power-law statistics.
//
// PRSim's complexity depends on the *cumulative* power-law exponent gamma of
// the out-degree distribution: P_o(k) = fraction of nodes with out-degree
// >= k ~ k^-gamma (paper Section 1). This module computes degree CCDFs,
// fits gamma (log-log least squares over the tail, plus a Hill estimator as a
// cross-check), and provides the reverse-PageRank "hardness" statistics used
// by Theorem 3.11 (second moment sum_w pi(w)^2 and the Zipf fit pi(w_j) ~
// j^-beta with beta = 1/gamma).

#ifndef PRSIM_GRAPH_STATS_H_
#define PRSIM_GRAPH_STATS_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace prsim {

enum class DegreeDirection { kOut, kIn };

/// One point of a degree CCDF: `count` nodes have degree >= `degree`.
struct CcdfPoint {
  uint64_t degree;
  uint64_t count;
  double fraction;  // count / n
};

/// Complementary cumulative degree distribution, ascending by degree,
/// restricted to degrees >= 1.
std::vector<CcdfPoint> DegreeCcdf(const Graph& graph, DegreeDirection dir);

/// Result of a cumulative power-law fit P(k) ~ k^-gamma.
struct PowerLawFit {
  double gamma = 0.0;      ///< fitted cumulative exponent
  double intercept = 0.0;  ///< fitted log-offset (log10 scale)
  double r_squared = 0.0;  ///< goodness of the log-log linear fit
  size_t points_used = 0;  ///< CCDF points included in the regression
};

/// Least-squares fit of log10 P(k) vs log10 k over CCDF points with degree in
/// [min_degree, max fraction >= min_fraction]. The tail cutoff avoids the
/// noisy extreme where only a handful of nodes remain.
PowerLawFit FitCumulativePowerLaw(const std::vector<CcdfPoint>& ccdf,
                                  uint64_t min_degree = 2,
                                  double min_fraction = 1e-5);

/// Convenience: fit the out-degree (or in-degree) exponent of a graph.
PowerLawFit FitDegreeExponent(const Graph& graph, DegreeDirection dir);

/// Hill maximum-likelihood estimator of the cumulative exponent using the
/// top `tail_fraction` of the degree sequence. Robust cross-check for the
/// regression fit.
double HillEstimator(const Graph& graph, DegreeDirection dir,
                     double tail_fraction = 0.1);

/// Hardness statistics of a reverse-PageRank vector (Theorem 3.11/3.12).
struct PageRankHardness {
  double second_moment = 0.0;  ///< sum_w pi(w)^2 in [1/n, 1]
  double beta = 0.0;           ///< Zipf fit pi(w_j) ~ j^-beta (= 1/gamma)
  double implied_gamma = 0.0;  ///< 1/beta
  double max_value = 0.0;      ///< pi(w_1)
};

/// Computes the hardness statistics from a (not necessarily normalized)
/// reverse PageRank vector.
PageRankHardness AnalyzePageRankVector(const std::vector<double>& pi);

/// Aggregate degree summary used by the Table 3 bench.
struct GraphSummary {
  NodeId n = 0;
  uint64_t m = 0;
  double avg_degree = 0.0;
  uint32_t max_out_degree = 0;
  uint32_t max_in_degree = 0;
  NodeId dangling_nodes = 0;
  double out_gamma = 0.0;  // fitted cumulative out-degree exponent
  double in_gamma = 0.0;   // fitted cumulative in-degree exponent
};

GraphSummary Summarize(const Graph& graph);

}  // namespace prsim

#endif  // PRSIM_GRAPH_STATS_H_
