// Deterministic node partitioning for sharded serving.
//
// A partition assigns every node of a graph to exactly one shard; the shard
// router uses it to pick the QueryService that owns a query's source node,
// and the shard-build pipeline records it in the bundle manifest so every
// process serving the bundle routes identically. Assignment is a pure
// function of (node, n, spec) — no RNG, no state — following Calvin's rule
// that deterministic placement is what keeps partitioned execution
// reproducible.
//
// Two strategies cover the common shapes: kHash spreads nodes via a
// splitmix64-style mix (balanced regardless of id locality), kRange keeps
// contiguous id blocks together (cache- and mmap-friendly when node ids
// correlate with storage order).

#ifndef PRSIM_GRAPH_PARTITION_H_
#define PRSIM_GRAPH_PARTITION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "util/status.h"

namespace prsim {

enum class PartitionStrategy : uint32_t {
  kHash = 0,
  kRange = 1,
};

/// "hash" / "range".
const char* PartitionStrategyName(PartitionStrategy strategy);
Result<PartitionStrategy> ParsePartitionStrategy(const std::string& name);

struct PartitionSpec {
  uint32_t shards = 1;
  PartitionStrategy strategy = PartitionStrategy::kHash;
};

/// Rejects zero shard counts and unknown strategies. Shard counts above n
/// are legal (the extra shards own no nodes).
Status ValidatePartitionSpec(const PartitionSpec& spec);

/// The shard owning node `v` of a graph with `n` nodes. Requires v < n and
/// a valid spec.
uint32_t ShardOfNode(NodeId v, NodeId n, const PartitionSpec& spec);

/// Materializes the full assignment: result[s] lists the nodes of shard s
/// in ascending id order.
std::vector<std::vector<NodeId>> PartitionNodes(NodeId n,
                                                const PartitionSpec& spec);

}  // namespace prsim

#endif  // PRSIM_GRAPH_PARTITION_H_
