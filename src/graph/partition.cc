#include "graph/partition.h"

#include "util/logging.h"

namespace prsim {

namespace {

/// splitmix64 finalizer: a full-avalanche stateless mix, so consecutive
/// node ids land on unrelated shards.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

}  // namespace

const char* PartitionStrategyName(PartitionStrategy strategy) {
  switch (strategy) {
    case PartitionStrategy::kHash:
      return "hash";
    case PartitionStrategy::kRange:
      return "range";
  }
  return "unknown";
}

Result<PartitionStrategy> ParsePartitionStrategy(const std::string& name) {
  if (name == "hash") return PartitionStrategy::kHash;
  if (name == "range") return PartitionStrategy::kRange;
  return Status::InvalidArgument("unknown partition strategy '" + name +
                                 "' (expected hash or range)");
}

Status ValidatePartitionSpec(const PartitionSpec& spec) {
  if (spec.shards == 0) {
    return Status::InvalidArgument("shard count must be at least 1");
  }
  if (spec.strategy != PartitionStrategy::kHash &&
      spec.strategy != PartitionStrategy::kRange) {
    return Status::InvalidArgument(
        "unknown partition strategy " +
        std::to_string(static_cast<uint32_t>(spec.strategy)));
  }
  return Status::OK();
}

uint32_t ShardOfNode(NodeId v, NodeId n, const PartitionSpec& spec) {
  PRSIM_CHECK(v < n) << "node " << v << " out of range (n = " << n << ")";
  PRSIM_CHECK(spec.shards > 0);
  if (spec.shards == 1) return 0;
  if (spec.strategy == PartitionStrategy::kRange) {
    // Ceil-divided block size: shard s owns ids [s*block, (s+1)*block).
    const uint64_t block = (static_cast<uint64_t>(n) + spec.shards - 1) /
                           spec.shards;
    return static_cast<uint32_t>(v / block);
  }
  return static_cast<uint32_t>(Mix64(v) % spec.shards);
}

std::vector<std::vector<NodeId>> PartitionNodes(NodeId n,
                                                const PartitionSpec& spec) {
  std::vector<std::vector<NodeId>> shards(spec.shards);
  for (NodeId v = 0; v < n; ++v) {
    shards[ShardOfNode(v, n, spec)].push_back(v);
  }
  return shards;
}

}  // namespace prsim
