#include "graph/builder.h"

#include <algorithm>

#include "util/flat_hash_map2.h"

namespace prsim {

namespace {

void Canonicalize(std::vector<Edge>& edges, const BuildOptions& options) {
  if (options.undirected) {
    const size_t original = edges.size();
    edges.reserve(original * 2);
    for (size_t i = 0; i < original; ++i) {
      edges.emplace_back(edges[i].second, edges[i].first);
    }
  }
  if (options.remove_self_loops) {
    edges.erase(std::remove_if(edges.begin(), edges.end(),
                               [](const Edge& e) {
                                 return e.first == e.second;
                               }),
                edges.end());
  }
  if (options.deduplicate) {
    std::sort(edges.begin(), edges.end());
    edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  }
}

NodeId CompactIds(std::vector<Edge>& edges) {
  // Stored ids are offset by one so 0 doubles as the "unseen" sentinel of
  // the default-constructed slot.
  FlatHashMap2<NodeId> remap(edges.size());
  NodeId next = 0;
  // First-appearance order keeps the renumbering deterministic.
  for (auto& [src, dst] : edges) {
    NodeId& s = remap[src];
    if (s == 0) s = ++next;
    src = s - 1;
    NodeId& d = remap[dst];
    if (d == 0) d = ++next;
    dst = d - 1;
  }
  return next;
}

}  // namespace

Result<Graph> GraphBuilder::Build(const BuildOptions& options) const {
  return BuildGraph(min_n_, edges_, options);
}

Result<Graph> BuildGraph(NodeId n, std::vector<Edge> edges,
                         const BuildOptions& options) {
  Canonicalize(edges, options);
  if (options.compact_ids) {
    n = std::max(n, CompactIds(edges));
  } else {
    for (const auto& [src, dst] : edges) {
      n = std::max({n, static_cast<NodeId>(src + 1),
                    static_cast<NodeId>(dst + 1)});
    }
  }
  return Graph::FromEdges(n, edges);
}

}  // namespace prsim
