#include "graph/builder.h"

#include <algorithm>
#include <unordered_map>

namespace prsim {

namespace {

void Canonicalize(std::vector<Edge>& edges, const BuildOptions& options) {
  if (options.undirected) {
    const size_t original = edges.size();
    edges.reserve(original * 2);
    for (size_t i = 0; i < original; ++i) {
      edges.emplace_back(edges[i].second, edges[i].first);
    }
  }
  if (options.remove_self_loops) {
    edges.erase(std::remove_if(edges.begin(), edges.end(),
                               [](const Edge& e) {
                                 return e.first == e.second;
                               }),
                edges.end());
  }
  if (options.deduplicate) {
    std::sort(edges.begin(), edges.end());
    edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  }
}

NodeId CompactIds(std::vector<Edge>& edges) {
  std::unordered_map<NodeId, NodeId> remap;
  remap.reserve(edges.size() * 2);
  // First-appearance order keeps the renumbering deterministic.
  for (auto& [src, dst] : edges) {
    auto [it_s, inserted_s] =
        remap.emplace(src, static_cast<NodeId>(remap.size()));
    src = it_s->second;
    (void)inserted_s;
    auto [it_d, inserted_d] =
        remap.emplace(dst, static_cast<NodeId>(remap.size()));
    dst = it_d->second;
    (void)inserted_d;
  }
  return static_cast<NodeId>(remap.size());
}

}  // namespace

Result<Graph> GraphBuilder::Build(const BuildOptions& options) const {
  return BuildGraph(min_n_, edges_, options);
}

Result<Graph> BuildGraph(NodeId n, std::vector<Edge> edges,
                         const BuildOptions& options) {
  Canonicalize(edges, options);
  if (options.compact_ids) {
    n = std::max(n, CompactIds(edges));
  } else {
    for (const auto& [src, dst] : edges) {
      n = std::max({n, static_cast<NodeId>(src + 1),
                    static_cast<NodeId>(dst + 1)});
    }
  }
  return Graph::FromEdges(n, edges);
}

}  // namespace prsim
