#include "graph/stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/logging.h"

namespace prsim {

namespace {

std::vector<uint32_t> DegreeSequence(const Graph& graph, DegreeDirection dir) {
  std::vector<uint32_t> degrees(graph.n());
  for (NodeId v = 0; v < graph.n(); ++v) {
    degrees[v] =
        dir == DegreeDirection::kOut ? graph.OutDegree(v) : graph.InDegree(v);
  }
  return degrees;
}

}  // namespace

std::vector<CcdfPoint> DegreeCcdf(const Graph& graph, DegreeDirection dir) {
  std::vector<uint32_t> degrees = DegreeSequence(graph, dir);
  std::sort(degrees.begin(), degrees.end());
  std::vector<CcdfPoint> ccdf;
  const double n = static_cast<double>(graph.n());
  // Walk the sorted sequence; for each distinct degree d >= 1, the number of
  // nodes with degree >= d is (n - first index of d).
  for (size_t i = 0; i < degrees.size();) {
    const uint32_t d = degrees[i];
    size_t j = i;
    while (j < degrees.size() && degrees[j] == d) ++j;
    if (d >= 1) {
      const uint64_t count = degrees.size() - i;
      ccdf.push_back({d, count, static_cast<double>(count) / n});
    }
    i = j;
  }
  return ccdf;
}

PowerLawFit FitCumulativePowerLaw(const std::vector<CcdfPoint>& ccdf,
                                  uint64_t min_degree, double min_fraction) {
  PowerLawFit fit;
  // Collect (log10 k, log10 P(k)) over the usable window.
  std::vector<std::pair<double, double>> pts;
  for (const auto& p : ccdf) {
    if (p.degree < min_degree) continue;
    if (p.fraction < min_fraction) continue;
    pts.emplace_back(std::log10(static_cast<double>(p.degree)),
                     std::log10(p.fraction));
  }
  fit.points_used = pts.size();
  if (pts.size() < 2) return fit;

  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (const auto& [x, y] : pts) {
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
    syy += y * y;
  }
  const double k = static_cast<double>(pts.size());
  const double denom = k * sxx - sx * sx;
  if (denom <= 0) return fit;
  const double slope = (k * sxy - sx * sy) / denom;
  fit.gamma = -slope;
  fit.intercept = (sy - slope * sx) / k;
  const double ss_tot = syy - sy * sy / k;
  double ss_res = 0;
  for (const auto& [x, y] : pts) {
    const double pred = fit.intercept + slope * x;
    ss_res += (y - pred) * (y - pred);
  }
  fit.r_squared = ss_tot <= 0 ? 1.0 : 1.0 - ss_res / ss_tot;
  return fit;
}

PowerLawFit FitDegreeExponent(const Graph& graph, DegreeDirection dir) {
  return FitCumulativePowerLaw(DegreeCcdf(graph, dir));
}

double HillEstimator(const Graph& graph, DegreeDirection dir,
                     double tail_fraction) {
  std::vector<uint32_t> degrees = DegreeSequence(graph, dir);
  std::sort(degrees.begin(), degrees.end(), std::greater<>());
  size_t k = static_cast<size_t>(tail_fraction * degrees.size());
  // Need at least two tail entries and a strictly positive threshold degree.
  while (k >= 2 && degrees[k - 1] == 0) --k;
  if (k < 2) return 0.0;
  const double threshold = degrees[k - 1];
  double sum_log = 0.0;
  size_t used = 0;
  for (size_t i = 0; i + 1 < k; ++i) {
    if (degrees[i] == 0) break;
    sum_log += std::log(static_cast<double>(degrees[i]) / threshold);
    ++used;
  }
  if (used == 0 || sum_log <= 0) return 0.0;
  return static_cast<double>(used) / sum_log;
}

PageRankHardness AnalyzePageRankVector(const std::vector<double>& pi) {
  PageRankHardness h;
  if (pi.empty()) return h;
  std::vector<double> sorted(pi);
  std::sort(sorted.begin(), sorted.end(), std::greater<>());
  h.max_value = sorted.front();
  for (double x : pi) h.second_moment += x * x;

  // Zipf fit pi(w_j) ~ j^-beta over ranks [2, j_hi] where mass is positive.
  // Rank 1 is excluded: the single largest value is noisy.
  size_t j_hi = sorted.size();
  while (j_hi > 0 && sorted[j_hi - 1] <= 0) --j_hi;
  if (j_hi < 8) return h;
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  size_t used = 0;
  // Subsample ranks geometrically so huge graphs do not drown the head.
  for (size_t j = 2; j <= j_hi; j = std::max(j + 1, j + j / 8)) {
    const double x = std::log10(static_cast<double>(j));
    const double y = std::log10(sorted[j - 1]);
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
    ++used;
  }
  const double k = static_cast<double>(used);
  const double denom = k * sxx - sx * sx;
  if (denom > 0) {
    h.beta = -(k * sxy - sx * sy) / denom;
    if (h.beta > 1e-9) h.implied_gamma = 1.0 / h.beta;
  }
  return h;
}

GraphSummary Summarize(const Graph& graph) {
  GraphSummary s;
  s.n = graph.n();
  s.m = graph.m();
  s.avg_degree = graph.AverageDegree();
  for (NodeId v = 0; v < graph.n(); ++v) {
    s.max_out_degree = std::max(s.max_out_degree, graph.OutDegree(v));
    s.max_in_degree = std::max(s.max_in_degree, graph.InDegree(v));
  }
  s.dangling_nodes = graph.CountDanglingNodes();
  s.out_gamma = FitDegreeExponent(graph, DegreeDirection::kOut).gamma;
  s.in_gamma = FitDegreeExponent(graph, DegreeDirection::kIn).gamma;
  return s;
}

}  // namespace prsim
