#include "graph/io.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/serde.h"

namespace prsim {

namespace {

constexpr char kGraphKind[] = "graph";
constexpr uint32_t kGraphVersion = 1;

bool ParseEdgeLine(const char* line, NodeId* src, NodeId* dst) {
  char* end = nullptr;
  unsigned long long a = std::strtoull(line, &end, 10);
  if (end == line) return false;
  const char* p = end;
  while (*p == ' ' || *p == '\t' || *p == ',') ++p;
  unsigned long long b = std::strtoull(p, &end, 10);
  if (end == p) return false;
  if (a > 0xfffffffeULL || b > 0xfffffffeULL) return false;
  *src = static_cast<NodeId>(a);
  *dst = static_cast<NodeId>(b);
  return true;
}

Result<std::vector<Edge>> ParseStream(std::istream& in,
                                      const std::string& origin) {
  std::vector<Edge> edges;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const char* p = line.c_str();
    while (*p == ' ' || *p == '\t') ++p;
    if (*p == '\0' || *p == '#' || *p == '%') continue;
    NodeId src, dst;
    if (!ParseEdgeLine(p, &src, &dst)) {
      return Status::IOError(origin + ": malformed edge at line " +
                             std::to_string(line_no) + ": '" + line + "'");
    }
    edges.emplace_back(src, dst);
  }
  return edges;
}

}  // namespace

Result<std::vector<Edge>> LoadEdgeListText(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open '" + path + "' for reading");
  return ParseStream(in, path);
}

Result<std::vector<Edge>> ParseEdgeListText(const std::string& text) {
  std::istringstream in(text);
  return ParseStream(in, "<string>");
}

Status SaveEdgeListText(const Graph& graph, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open '" + path + "' for writing");
  out << "# prsim edge list: n=" << graph.n() << " m=" << graph.m() << "\n";
  for (NodeId v = 0; v < graph.n(); ++v) {
    for (NodeId w : graph.OutNeighbors(v)) {
      out << v << '\t' << w << '\n';
    }
  }
  if (!out) return Status::IOError("write failure on '" + path + "'");
  return Status::OK();
}

Result<Graph> LoadGraphText(const std::string& path,
                            const BuildOptions& options) {
  PRSIM_ASSIGN_OR_RETURN(std::vector<Edge> edges, LoadEdgeListText(path));
  return BuildGraph(0, std::move(edges), options);
}

Status GraphIO::SaveBinary(const Graph& graph, const std::string& path) {
  BinaryWriter writer(path, kGraphKind, kGraphVersion);
  writer.WritePod(graph.n_);
  writer.WriteVector(graph.out_off_);
  writer.WriteVector(graph.out_adj_);
  writer.WriteVector(graph.out_tgt_in_degree_);
  writer.WriteVector(graph.in_off_);
  writer.WriteVector(graph.in_adj_);
  writer.WriteVector(graph.in_degree_);
  return writer.Finish();
}

Result<Graph> GraphIO::LoadBinary(const std::string& path) {
  BinaryReader reader(path, kGraphKind, kGraphVersion);
  Graph g;
  PRSIM_RETURN_NOT_OK(reader.ReadPod(&g.n_));
  PRSIM_RETURN_NOT_OK(reader.ReadVector(&g.out_off_));
  PRSIM_RETURN_NOT_OK(reader.ReadVector(&g.out_adj_));
  PRSIM_RETURN_NOT_OK(reader.ReadVector(&g.out_tgt_in_degree_));
  PRSIM_RETURN_NOT_OK(reader.ReadVector(&g.in_off_));
  PRSIM_RETURN_NOT_OK(reader.ReadVector(&g.in_adj_));
  PRSIM_RETURN_NOT_OK(reader.ReadVector(&g.in_degree_));
  PRSIM_RETURN_NOT_OK(reader.Finish());
  PRSIM_RETURN_NOT_OK(g.Validate());
  return g;
}

}  // namespace prsim
