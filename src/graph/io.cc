#include "graph/io.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/serde.h"

namespace prsim {

namespace {

constexpr char kGraphKind[] = "graph";
constexpr uint32_t kGraphVersion = 1;

bool ParseEdgeLine(const char* line, NodeId* src, NodeId* dst) {
  char* end = nullptr;
  unsigned long long a = std::strtoull(line, &end, 10);
  if (end == line) return false;
  const char* p = end;
  while (*p == ' ' || *p == '\t' || *p == ',') ++p;
  unsigned long long b = std::strtoull(p, &end, 10);
  if (end == p) return false;
  if (a > 0xfffffffeULL || b > 0xfffffffeULL) return false;
  *src = static_cast<NodeId>(a);
  *dst = static_cast<NodeId>(b);
  return true;
}

Result<std::vector<Edge>> ParseStream(std::istream& in,
                                      const std::string& origin) {
  std::vector<Edge> edges;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const char* p = line.c_str();
    while (*p == ' ' || *p == '\t') ++p;
    if (*p == '\0' || *p == '#' || *p == '%') continue;
    NodeId src, dst;
    if (!ParseEdgeLine(p, &src, &dst)) {
      return Status::IOError(origin + ": malformed edge at line " +
                             std::to_string(line_no) + ": '" + line + "'");
    }
    edges.emplace_back(src, dst);
  }
  return edges;
}

}  // namespace

Result<std::vector<Edge>> LoadEdgeListText(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open '" + path + "' for reading");
  return ParseStream(in, path);
}

Result<std::vector<Edge>> ParseEdgeListText(const std::string& text) {
  std::istringstream in(text);
  return ParseStream(in, "<string>");
}

Status SaveEdgeListText(const Graph& graph, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open '" + path + "' for writing");
  out << "# prsim edge list: n=" << graph.n() << " m=" << graph.m() << "\n";
  for (NodeId v = 0; v < graph.n(); ++v) {
    for (NodeId w : graph.OutNeighbors(v)) {
      out << v << '\t' << w << '\n';
    }
  }
  if (!out) return Status::IOError("write failure on '" + path + "'");
  return Status::OK();
}

Result<Graph> LoadGraphText(const std::string& path,
                            const BuildOptions& options) {
  PRSIM_ASSIGN_OR_RETURN(std::vector<Edge> edges, LoadEdgeListText(path));
  return BuildGraph(0, std::move(edges), options);
}

Status GraphIO::SaveBinary(const Graph& graph, const std::string& path) {
  // Format v2: one aligned section per CSR array, so LoadBinary can hand
  // out zero-copy views over the mapped file. The "meta" section mirrors
  // the v1 field order minus the arrays, which lets the v1 shim feed the
  // same load path.
  ArtifactWriter writer(path, kGraphKind);
  writer.AddSection("meta").WritePod(graph.n_);
  writer.AddSection("out_off").WriteVector(graph.out_off_.span());
  writer.AddSection("out_adj").WriteVector(graph.out_adj_.span());
  writer.AddSection("out_deg").WriteVector(graph.out_tgt_in_degree_.span());
  writer.AddSection("in_off").WriteVector(graph.in_off_.span());
  writer.AddSection("in_adj").WriteVector(graph.in_adj_.span());
  writer.AddSection("in_degree").WriteVector(graph.in_degree_.span());
  return writer.Finish();
}

Status GraphIO::SaveBinaryV1(const Graph& graph, const std::string& path) {
  BinaryWriter writer(path, kGraphKind, kGraphVersion);
  writer.WritePod(graph.n_);
  writer.WriteVector(graph.out_off_.span());
  writer.WriteVector(graph.out_adj_.span());
  writer.WriteVector(graph.out_tgt_in_degree_.span());
  writer.WriteVector(graph.in_off_.span());
  writer.WriteVector(graph.in_adj_.span());
  writer.WriteVector(graph.in_degree_.span());
  return writer.Finish();
}

Result<Graph> GraphIO::LoadBinary(const std::string& path,
                                  const LoadOptions& options) {
  ArtifactReader::Options reader_options;
  reader_options.allow_mmap = options.allow_mmap;
  PRSIM_ASSIGN_OR_RETURN(
      ArtifactReader artifact,
      ArtifactReader::Open(path, kGraphKind, reader_options));
  // The section sequence matches the v1 field order exactly, so the shared
  // cursor of the v1 shim replays the legacy payload through this same
  // code. Intermediate Finish() calls only apply to real (v2) sections.
  const bool v2 = artifact.version() == kSerdeFormatV2;
  Graph g;
  const auto load_array = [&](const char* name, auto* member,
                              bool last) -> Status {
    PRSIM_ASSIGN_OR_RETURN(SectionReader section, artifact.Section(name));
    PRSIM_RETURN_NOT_OK(section.ReadPodArray(member));
    if (v2 || last) PRSIM_RETURN_NOT_OK(section.Finish());
    return Status::OK();
  };
  {
    PRSIM_ASSIGN_OR_RETURN(SectionReader meta, artifact.Section("meta"));
    PRSIM_RETURN_NOT_OK(meta.ReadPod(&g.n_));
    if (v2) PRSIM_RETURN_NOT_OK(meta.Finish());
  }
  PRSIM_RETURN_NOT_OK(load_array("out_off", &g.out_off_, false));
  PRSIM_RETURN_NOT_OK(load_array("out_adj", &g.out_adj_, false));
  PRSIM_RETURN_NOT_OK(load_array("out_deg", &g.out_tgt_in_degree_, false));
  PRSIM_RETURN_NOT_OK(load_array("in_off", &g.in_off_, false));
  PRSIM_RETURN_NOT_OK(load_array("in_adj", &g.in_adj_, false));
  PRSIM_RETURN_NOT_OK(load_array("in_degree", &g.in_degree_, true));

  // Structural size checks are O(1) and always on; the full O(m) invariant
  // sweep is opt-out for trusted cold-start paths.
  const auto n = static_cast<size_t>(g.n_);
  if (g.out_off_.size() != n + 1 || g.in_off_.size() != n + 1 ||
      g.in_degree_.size() != n ||
      g.out_adj_.size() != g.out_tgt_in_degree_.size() ||
      g.out_adj_.size() != g.in_adj_.size() ||
      g.out_off_.front() != 0 || g.out_off_.back() != g.out_adj_.size() ||
      g.in_off_.front() != 0 || g.in_off_.back() != g.in_adj_.size()) {
    return Status::InvalidArgument("corrupt artifact '" + path +
                                   "': CSR array sizes are inconsistent");
  }
  if (options.validate) PRSIM_RETURN_NOT_OK(g.Validate());
  return g;
}

}  // namespace prsim
