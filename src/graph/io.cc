#include "graph/io.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

namespace prsim {

namespace {

constexpr char kMagic[8] = {'P', 'R', 'S', 'I', 'M', 'G', 'R', '1'};

bool ParseEdgeLine(const char* line, NodeId* src, NodeId* dst) {
  char* end = nullptr;
  unsigned long long a = std::strtoull(line, &end, 10);
  if (end == line) return false;
  const char* p = end;
  while (*p == ' ' || *p == '\t' || *p == ',') ++p;
  unsigned long long b = std::strtoull(p, &end, 10);
  if (end == p) return false;
  if (a > 0xfffffffeULL || b > 0xfffffffeULL) return false;
  *src = static_cast<NodeId>(a);
  *dst = static_cast<NodeId>(b);
  return true;
}

Result<std::vector<Edge>> ParseStream(std::istream& in,
                                      const std::string& origin) {
  std::vector<Edge> edges;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const char* p = line.c_str();
    while (*p == ' ' || *p == '\t') ++p;
    if (*p == '\0' || *p == '#' || *p == '%') continue;
    NodeId src, dst;
    if (!ParseEdgeLine(p, &src, &dst)) {
      return Status::IOError(origin + ": malformed edge at line " +
                             std::to_string(line_no) + ": '" + line + "'");
    }
    edges.emplace_back(src, dst);
  }
  return edges;
}

template <typename T>
void WritePod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
void WriteVector(std::ostream& out, const std::vector<T>& v) {
  WritePod<uint64_t>(out, v.size());
  out.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(v.size() * sizeof(T)));
}

template <typename T>
bool ReadPod(std::istream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  return static_cast<bool>(in);
}

template <typename T>
bool ReadVector(std::istream& in, std::vector<T>* v) {
  uint64_t size = 0;
  if (!ReadPod(in, &size)) return false;
  v->resize(size);
  in.read(reinterpret_cast<char*>(v->data()),
          static_cast<std::streamsize>(size * sizeof(T)));
  return static_cast<bool>(in);
}

}  // namespace

Result<std::vector<Edge>> LoadEdgeListText(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open '" + path + "' for reading");
  return ParseStream(in, path);
}

Result<std::vector<Edge>> ParseEdgeListText(const std::string& text) {
  std::istringstream in(text);
  return ParseStream(in, "<string>");
}

Status SaveEdgeListText(const Graph& graph, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open '" + path + "' for writing");
  out << "# prsim edge list: n=" << graph.n() << " m=" << graph.m() << "\n";
  for (NodeId v = 0; v < graph.n(); ++v) {
    for (NodeId w : graph.OutNeighbors(v)) {
      out << v << '\t' << w << '\n';
    }
  }
  if (!out) return Status::IOError("write failure on '" + path + "'");
  return Status::OK();
}

Result<Graph> LoadGraphText(const std::string& path,
                            const BuildOptions& options) {
  PRSIM_ASSIGN_OR_RETURN(std::vector<Edge> edges, LoadEdgeListText(path));
  return BuildGraph(0, std::move(edges), options);
}

Status GraphIO::SaveBinary(const Graph& graph, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open '" + path + "' for writing");
  out.write(kMagic, sizeof(kMagic));
  WritePod<uint32_t>(out, graph.n_);
  WriteVector(out, graph.out_off_);
  WriteVector(out, graph.out_adj_);
  WriteVector(out, graph.out_tgt_in_degree_);
  WriteVector(out, graph.in_off_);
  WriteVector(out, graph.in_adj_);
  WriteVector(out, graph.in_degree_);
  if (!out) return Status::IOError("write failure on '" + path + "'");
  return Status::OK();
}

Result<Graph> GraphIO::LoadBinary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open '" + path + "' for reading");
  char magic[8];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::IOError("'" + path + "' is not a prsim binary graph");
  }
  Graph g;
  if (!ReadPod(in, &g.n_) || !ReadVector(in, &g.out_off_) ||
      !ReadVector(in, &g.out_adj_) ||
      !ReadVector(in, &g.out_tgt_in_degree_) || !ReadVector(in, &g.in_off_) ||
      !ReadVector(in, &g.in_adj_) || !ReadVector(in, &g.in_degree_)) {
    return Status::IOError("truncated binary graph '" + path + "'");
  }
  PRSIM_RETURN_NOT_OK(g.Validate());
  return g;
}

}  // namespace prsim
