// Graph serialization: SNAP-style edge-list text and a binary snapshot.
//
// Text format is line-oriented "src<ws>dst", with '#' or '%' comment lines
// (the convention of snap.stanford.edu and law.di.unimi.it exports). Binary
// snapshots serialize the finished CSR so repeated bench runs skip both
// parsing and the counting sort.

#ifndef PRSIM_GRAPH_IO_H_
#define PRSIM_GRAPH_IO_H_

#include <string>
#include <vector>

#include "graph/builder.h"
#include "graph/graph.h"
#include "util/status.h"

namespace prsim {

/// Parses a SNAP-style edge-list file into (n, edges); n is max id + 1.
Result<std::vector<Edge>> LoadEdgeListText(const std::string& path);

/// Parses edge-list text from an in-memory string (testing convenience).
Result<std::vector<Edge>> ParseEdgeListText(const std::string& text);

/// Writes "src\tdst" lines with a leading comment header.
Status SaveEdgeListText(const Graph& graph, const std::string& path);

/// Loads an edge-list file and builds a Graph per `options`.
Result<Graph> LoadGraphText(const std::string& path,
                            const BuildOptions& options = BuildOptions());

/// Binary snapshot of a finished Graph.
///
/// SaveBinary writes the serde format-v2 container: each CSR array is its
/// own 64-byte-aligned section, so LoadBinary can mmap the file and hand
/// the Graph zero-copy views instead of parsing every array onto the heap.
/// LoadBinary also reads pre-v2 snapshots (single sequential payload), which
/// always parse onto the heap.
struct GraphLoadOptions {
  /// Back the arrays with an mmap'd region when possible (v2 only).
  bool allow_mmap = true;
  /// Run Graph::Validate() on the loaded structure. Costs O(m log m) on
  /// test-sized graphs; trusted callers on hot cold-start paths can skip
  /// it since checksums already guarantee byte integrity.
  bool validate = true;
};

class GraphIO {
 public:
  using LoadOptions = GraphLoadOptions;

  static Status SaveBinary(const Graph& graph, const std::string& path);
  static Result<Graph> LoadBinary(const std::string& path,
                                  const LoadOptions& options = {});

  /// Writes the legacy v1 single-payload snapshot; kept for compatibility
  /// tests and the v1-vs-v2 cold-load benchmark.
  static Status SaveBinaryV1(const Graph& graph, const std::string& path);
};

}  // namespace prsim

#endif  // PRSIM_GRAPH_IO_H_
