// Graph serialization: SNAP-style edge-list text and a binary snapshot.
//
// Text format is line-oriented "src<ws>dst", with '#' or '%' comment lines
// (the convention of snap.stanford.edu and law.di.unimi.it exports). Binary
// snapshots serialize the finished CSR so repeated bench runs skip both
// parsing and the counting sort.

#ifndef PRSIM_GRAPH_IO_H_
#define PRSIM_GRAPH_IO_H_

#include <string>
#include <vector>

#include "graph/builder.h"
#include "graph/graph.h"
#include "util/status.h"

namespace prsim {

/// Parses a SNAP-style edge-list file into (n, edges); n is max id + 1.
Result<std::vector<Edge>> LoadEdgeListText(const std::string& path);

/// Parses edge-list text from an in-memory string (testing convenience).
Result<std::vector<Edge>> ParseEdgeListText(const std::string& text);

/// Writes "src\tdst" lines with a leading comment header.
Status SaveEdgeListText(const Graph& graph, const std::string& path);

/// Loads an edge-list file and builds a Graph per `options`.
Result<Graph> LoadGraphText(const std::string& path,
                            const BuildOptions& options = BuildOptions());

/// Binary snapshot of a finished Graph (magic + version + CSR arrays).
class GraphIO {
 public:
  static Status SaveBinary(const Graph& graph, const std::string& path);
  static Result<Graph> LoadBinary(const std::string& path);
};

}  // namespace prsim

#endif  // PRSIM_GRAPH_IO_H_
