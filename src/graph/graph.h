// Immutable directed graph in compressed-sparse-row form.
//
// This is the storage substrate every algorithm in the library runs on. Both
// adjacency directions are materialized:
//
//  * in-adjacency  — consumed by sqrt(c)-walks, which move to uniformly
//    random in-neighbors;
//  * out-adjacency — consumed by backward search / backward walks, which push
//    mass from a node to its out-neighbors.
//
// Following PRSim's preprocessing (Algorithm 1, lines 1-4), the out-adjacency
// list of every node is ordered by ascending in-degree of the target, built
// with a single counting sort over all edges in O(n + m). The variance-bounded
// backward walk (Algorithm 3) depends on this ordering: it scans a prefix of
// O(x) up to an in-degree threshold instead of the whole list. A parallel
// array stores each out-target's in-degree so the scan is branch-predictable
// and never dereferences the degree array.

#ifndef PRSIM_GRAPH_GRAPH_H_
#define PRSIM_GRAPH_GRAPH_H_

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "util/pod_array.h"
#include "util/status.h"

namespace prsim {

using NodeId = uint32_t;

/// A directed edge (source, target).
using Edge = std::pair<NodeId, NodeId>;

class Graph {
 public:
  Graph() = default;

  /// Builds a graph with nodes [0, n) from an edge list.
  ///
  /// Duplicate edges and self-loops are kept as given; use GraphBuilder for
  /// canonicalization policies. Fails if any endpoint is >= n.
  static Result<Graph> FromEdges(NodeId n, const std::vector<Edge>& edges);

  NodeId n() const { return n_; }
  uint64_t m() const { return static_cast<uint64_t>(out_adj_.size()); }

  uint32_t OutDegree(NodeId v) const {
    return static_cast<uint32_t>(out_off_[v + 1] - out_off_[v]);
  }
  uint32_t InDegree(NodeId v) const { return in_degree_[v]; }

  /// Average degree m/n.
  double AverageDegree() const {
    return n_ == 0 ? 0.0 : static_cast<double>(m()) / n_;
  }

  /// Out-neighbors of v, ordered by ascending in-degree of the target.
  std::span<const NodeId> OutNeighbors(NodeId v) const {
    return {out_adj_.data() + out_off_[v],
            out_adj_.data() + out_off_[v + 1]};
  }

  /// In-degrees of the out-neighbors of v, parallel to OutNeighbors(v);
  /// non-decreasing by construction.
  std::span<const uint32_t> OutNeighborInDegrees(NodeId v) const {
    return {out_tgt_in_degree_.data() + out_off_[v],
            out_tgt_in_degree_.data() + out_off_[v + 1]};
  }

  /// In-neighbors of v (unordered).
  std::span<const NodeId> InNeighbors(NodeId v) const {
    return {in_adj_.data() + in_off_[v], in_adj_.data() + in_off_[v + 1]};
  }

  /// Uniformly random in-neighbor accessor: the idx-th in-neighbor of v.
  NodeId InNeighborAt(NodeId v, uint32_t idx) const {
    return in_adj_[in_off_[v] + idx];
  }

  /// Number of nodes with no in-neighbors ("dangling" for sqrt(c)-walks).
  NodeId CountDanglingNodes() const;

  /// Materializes the full edge list (source, target), grouped by source.
  std::vector<Edge> ToEdges() const;

  /// Heap bytes held by adjacency structures.
  size_t MemoryBytes() const;

  /// FNV-1a over n and the out-CSR arrays, in O(n + m). Artifact
  /// fingerprints embed this so an index saved against one graph cannot be
  /// loaded against a different graph of the same size. The in-adjacency is
  /// derived from the same edge multiset and is not hashed separately.
  uint64_t Checksum() const;

  /// Invariant checker used by tests and the binary loader: offsets are
  /// monotone, adjacency ids are in range, the in-degree ordering of
  /// out-adjacency holds, and both directions describe the same edge multiset.
  Status Validate() const;

 private:
  friend class GraphIO;

  // CSR arrays are PodArrays: owned vectors when built in memory, zero-copy
  // views into an mmap'd format-v2 snapshot when loaded by GraphIO.
  NodeId n_ = 0;
  PodArray<uint64_t> out_off_;            // size n+1
  PodArray<NodeId> out_adj_;              // size m, sorted by target in-deg
  PodArray<uint32_t> out_tgt_in_degree_;  // size m, parallel to out_adj_
  PodArray<uint64_t> in_off_;             // size n+1
  PodArray<NodeId> in_adj_;               // size m
  PodArray<uint32_t> in_degree_;          // size n
};

}  // namespace prsim

#endif  // PRSIM_GRAPH_GRAPH_H_
