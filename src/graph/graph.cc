#include "graph/graph.h"

#include <algorithm>
#include <numeric>
#include <utility>

#include "util/serde.h"

namespace prsim {

Result<Graph> Graph::FromEdges(NodeId n, const std::vector<Edge>& edges) {
  const uint64_t m = edges.size();

  // Degree pass; also validates endpoints. Arrays are built in mutable
  // locals and moved into the (owned-state) PodArray members at the end.
  std::vector<uint32_t> in_degree(n, 0);
  std::vector<uint32_t> out_degree(n, 0);
  for (const auto& [src, dst] : edges) {
    if (src >= n || dst >= n) {
      return Status::InvalidArgument("edge endpoint out of range: (" +
                                     std::to_string(src) + ", " +
                                     std::to_string(dst) + ") with n = " +
                                     std::to_string(n));
    }
    ++out_degree[src];
    ++in_degree[dst];
  }

  // In-adjacency CSR.
  std::vector<uint64_t> in_off(static_cast<size_t>(n) + 1, 0);
  for (NodeId v = 0; v < n; ++v) {
    in_off[v + 1] = in_off[v] + in_degree[v];
  }
  std::vector<NodeId> in_adj(m);
  {
    std::vector<uint64_t> cursor(in_off.begin(), in_off.end() - 1);
    for (const auto& [src, dst] : edges) {
      in_adj[cursor[dst]++] = src;
    }
  }

  // Out-adjacency CSR, with each adjacency list ordered by ascending target
  // in-degree. Per Algorithm 1 (lines 1-4): counting-sort all edges by
  // in_degree(target), then append targets to their source's list in sorted
  // order. Total cost O(n + m).
  std::vector<uint64_t> out_off(static_cast<size_t>(n) + 1, 0);
  for (NodeId v = 0; v < n; ++v) {
    out_off[v + 1] = out_off[v] + out_degree[v];
  }
  std::vector<NodeId> out_adj(m);
  std::vector<uint32_t> out_tgt_in_degree(m);
  {
    // Bucket edge indices by target in-degree (values in [0, n]).
    std::vector<uint64_t> bucket_off(static_cast<size_t>(n) + 2, 0);
    for (const auto& e : edges) {
      ++bucket_off[in_degree[e.second] + 1];
    }
    std::partial_sum(bucket_off.begin(), bucket_off.end(), bucket_off.begin());
    std::vector<uint32_t> sorted_src(m);
    std::vector<NodeId> sorted_dst(m);
    {
      std::vector<uint64_t> cursor(bucket_off.begin(), bucket_off.end() - 1);
      for (const auto& [src, dst] : edges) {
        const uint64_t pos = cursor[in_degree[dst]]++;
        sorted_src[pos] = src;
        sorted_dst[pos] = dst;
      }
    }
    std::vector<uint64_t> cursor(out_off.begin(), out_off.end() - 1);
    for (uint64_t i = 0; i < m; ++i) {
      const NodeId src = sorted_src[i];
      const NodeId dst = sorted_dst[i];
      const uint64_t pos = cursor[src]++;
      out_adj[pos] = dst;
      out_tgt_in_degree[pos] = in_degree[dst];
    }
  }

  Graph g;
  g.n_ = n;
  g.out_off_ = std::move(out_off);
  g.out_adj_ = std::move(out_adj);
  g.out_tgt_in_degree_ = std::move(out_tgt_in_degree);
  g.in_off_ = std::move(in_off);
  g.in_adj_ = std::move(in_adj);
  g.in_degree_ = std::move(in_degree);
  return g;
}

NodeId Graph::CountDanglingNodes() const {
  NodeId count = 0;
  for (NodeId v = 0; v < n_; ++v) {
    if (in_degree_[v] == 0) ++count;
  }
  return count;
}

std::vector<Edge> Graph::ToEdges() const {
  std::vector<Edge> edges;
  edges.reserve(m());
  for (NodeId v = 0; v < n_; ++v) {
    for (NodeId w : OutNeighbors(v)) {
      edges.emplace_back(v, w);
    }
  }
  return edges;
}

size_t Graph::MemoryBytes() const {
  return out_off_.size() * sizeof(uint64_t) +
         out_adj_.size() * sizeof(NodeId) +
         out_tgt_in_degree_.size() * sizeof(uint32_t) +
         in_off_.size() * sizeof(uint64_t) + in_adj_.size() * sizeof(NodeId) +
         in_degree_.size() * sizeof(uint32_t);
}

uint64_t Graph::Checksum() const {
  Fnv64 hash;
  hash.Update(&n_, sizeof(n_));
  if (!out_off_.empty()) {
    hash.Update(out_off_.data(), out_off_.size() * sizeof(uint64_t));
  }
  if (!out_adj_.empty()) {
    hash.Update(out_adj_.data(), out_adj_.size() * sizeof(NodeId));
  }
  return hash.digest();
}

Status Graph::Validate() const {
  if (out_off_.size() != n_ + 1u || in_off_.size() != n_ + 1u) {
    return Status::Internal("offset arrays have wrong size");
  }
  if (out_off_.front() != 0 || in_off_.front() != 0 ||
      out_off_.back() != out_adj_.size() || in_off_.back() != in_adj_.size() ||
      out_adj_.size() != in_adj_.size()) {
    return Status::Internal("offset arrays do not cover adjacency arrays");
  }
  for (NodeId v = 0; v < n_; ++v) {
    if (out_off_[v] > out_off_[v + 1] || in_off_[v] > in_off_[v + 1]) {
      return Status::Internal("non-monotone CSR offsets");
    }
    uint32_t prev_deg = 0;
    auto degs = OutNeighborInDegrees(v);
    auto outs = OutNeighbors(v);
    for (size_t i = 0; i < outs.size(); ++i) {
      if (outs[i] >= n_) return Status::Internal("out-neighbor out of range");
      if (degs[i] != in_degree_[outs[i]]) {
        return Status::Internal("stale cached in-degree in out-adjacency");
      }
      if (degs[i] < prev_deg) {
        return Status::Internal("out-adjacency not sorted by target in-degree");
      }
      prev_deg = degs[i];
    }
    for (NodeId u : InNeighbors(v)) {
      if (u >= n_) return Status::Internal("in-neighbor out of range");
    }
    if (InDegree(v) != in_off_[v + 1] - in_off_[v]) {
      return Status::Internal("in_degree_ inconsistent with in_off_");
    }
  }
  // Edge multiset equality between directions via degree-count comparison:
  // count (src,dst) occurrences with a sort-free 64-bit accumulation.
  // For test-sized graphs a full sort is affordable and exact.
  if (m() <= (1u << 22)) {
    std::vector<uint64_t> fwd, bwd;
    fwd.reserve(m());
    bwd.reserve(m());
    for (NodeId v = 0; v < n_; ++v) {
      for (NodeId w : OutNeighbors(v)) {
        fwd.push_back((static_cast<uint64_t>(v) << 32) | w);
      }
      for (NodeId u : InNeighbors(v)) {
        bwd.push_back((static_cast<uint64_t>(u) << 32) | v);
      }
    }
    std::sort(fwd.begin(), fwd.end());
    std::sort(bwd.begin(), bwd.end());
    if (fwd != bwd) {
      return Status::Internal("in/out adjacency describe different edges");
    }
  }
  return Status::OK();
}

}  // namespace prsim
