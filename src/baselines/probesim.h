// ProbeSim (Liu et al. [25]): index-free single-source SimRank.
//
// Each sample walks a sqrt(c)-trajectory W(u) from u and, for every step l
// with position w_l, runs a deterministic Probe that pushes probability mass
// down out-edges for l levels, computing for every v the probability that a
// sqrt(c)-walk from v is at w_l at its step l *without* having met W(u) at an
// earlier step (first-meeting correction: level i of the expansion
// corresponds to v-walk step l - i and skips the node W(u)[l - i]). Summing
// probe results over l and averaging over samples yields an unbiased
// single-source estimator.
//
// The probe expands whole out-neighborhoods, so a sample that lands on a
// high reverse-PageRank hub costs O(n pi(w) * d) — the weakness PRSim's
// variance-bounded backward walk removes (paper Sections 4 and 5.3).

#ifndef PRSIM_BASELINES_PROBESIM_H_
#define PRSIM_BASELINES_PROBESIM_H_

#include <cstdint>

#include "core/single_source.h"
#include "graph/graph.h"
#include "ppr/walker.h"
#include "util/flat_hash_map.h"
#include "util/rng.h"

namespace prsim {

struct ProbeSimOptions {
  double c = 0.6;
  double eps = 0.1;   ///< additive error target
  /// Samples = ceil(alpha / eps^2); alpha plays the role of log(n/delta)
  /// with the practical constant used across this library.
  double alpha = 3.0;
  uint64_t seed = 11;
};

class ProbeSim : public SingleSourceSimRank {
 public:
  ProbeSim(const Graph& graph, const ProbeSimOptions& options);

  std::string name() const override { return "ProbeSim"; }
  NodeId node_count() const override { return graph_.n(); }

  ScoreList Query(NodeId u) override;

  std::unique_ptr<SingleSourceSimRank> CloneWithSeed(
      uint64_t seed) const override {
    ProbeSimOptions options = options_;
    options.seed = seed;
    return std::make_unique<ProbeSim>(graph_, options);
  }
  uint64_t seed() const override { return options_.seed; }
  void Reseed(uint64_t seed) override {
    options_.seed = seed;
    rng_.Reseed(seed);
  }

  uint64_t samples() const { return samples_; }

 private:
  /// Runs one probe from `w` at trajectory step `level`, accumulating
  /// h_l(v, w) into `scores` with weight 1/samples_.
  void Probe(NodeId w, uint32_t level, const std::vector<NodeId>& trajectory,
             FlatHashMap<double>& scores);

  const Graph& graph_;
  ProbeSimOptions options_;
  Walker walker_;
  Rng rng_;
  uint64_t samples_;
  double sqrt_c_;
  // Deliberately the v1 map (see util/flat_hash_map.h): Probe() float-sums
  // expansion mass while iterating ForEach in slot order, so the map flavor
  // is part of the output bits.
  FlatHashMap<double> cur_{64};
  FlatHashMap<double> next_{64};
};

}  // namespace prsim

#endif  // PRSIM_BASELINES_PROBESIM_H_
