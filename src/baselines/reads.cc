#include "baselines/reads.h"

#include <algorithm>
#include <cmath>

#include "core/artifact.h"
#include "util/flat_hash_map2.h"
#include "util/logging.h"
#include "util/serde.h"

namespace prsim {

namespace {

constexpr char kReadsKind[] = "reads-index";

}  // namespace

Reads::Reads(const Graph& graph, const ReadsOptions& options)
    : graph_(graph), options_(options), rng_(options.seed) {
  PRSIM_CHECK(options_.r > 0 && options_.t > 0);
}

Status Reads::Preprocess() {
  const NodeId n = graph_.n();
  const uint32_t r = options_.r;
  const uint32_t t = options_.t;
  const double sqrt_c = std::sqrt(options_.c);

  // Rough expected entries: n * r * expected live steps (geometric).
  const double expected_len = sqrt_c / (1.0 - sqrt_c);
  const double expected_entries =
      static_cast<double>(n) * r * std::min<double>(expected_len, t);
  if (expected_entries > static_cast<double>(options_.max_index_entries)) {
    return Status::ResourceExhausted(
        "READS: expected index entries exceed budget");
  }

  StoredWalks walks;
  walks.traj_off.assign(static_cast<size_t>(n) * r + 1, 0);
  walks.buckets.assign(static_cast<size_t>(r) * t, {});

  // Sample and store r truncated sqrt(c)-walks per node. Trajectories hold
  // positions for steps 1..len (step 0 is the source itself).
  for (NodeId v = 0; v < n; ++v) {
    for (uint32_t j = 0; j < r; ++j) {
      NodeId pos = v;
      for (uint32_t i = 1; i <= t; ++i) {
        if (rng_.NextDouble() >= sqrt_c) break;
        const uint32_t din = graph_.InDegree(pos);
        if (din == 0) break;
        pos = graph_.InNeighborAt(pos, rng_.NextIndex(din));
        walks.traj_pos.push_back(pos);
        walks.buckets[static_cast<size_t>(j) * t + (i - 1)].push_back(
            {pos, v});
      }
      walks.traj_off[static_cast<size_t>(v) * r + j + 1] =
          static_cast<uint32_t>(walks.traj_pos.size());
    }
  }
  if (walks.traj_pos.size() > options_.max_index_entries) {
    return Status::ResourceExhausted("READS: index entries exceed budget");
  }
  for (auto& bucket : walks.buckets) {
    std::sort(bucket.begin(), bucket.end(),
              [](const Occurrence& a, const Occurrence& b) {
                return a.node < b.node;
              });
  }
  index_ = std::make_shared<const StoredWalks>(std::move(walks));
  meet_epoch_.assign(n, 0);
  epoch_ = 0;
  return Status::OK();
}

ScoreList Reads::Query(NodeId u) {
  PRSIM_CHECK(index_ != nullptr) << "call Preprocess() before Query()";
  PRSIM_CHECK(u < graph_.n());
  cost_ = QueryCost{};
  const StoredWalks& walks = *index_;
  const uint32_t r = options_.r;
  const uint32_t t = options_.t;
  const double inv_r = 1.0 / static_cast<double>(r);
  FlatHashMap2<double> scores(1024);

  for (uint32_t j = 0; j < r; ++j) {
    ++epoch_;  // one epoch per sample: a v meeting at several steps counts once
    const uint32_t begin = walks.traj_off[static_cast<size_t>(u) * r + j];
    const uint32_t end = walks.traj_off[static_cast<size_t>(u) * r + j + 1];
    for (uint32_t i = 0; i < end - begin && i < t; ++i) {
      const NodeId x = walks.traj_pos[begin + i];
      const auto& bucket = walks.buckets[static_cast<size_t>(j) * t + i];
      // All sources whose walk j is also at x at step i + 1.
      auto lo = std::lower_bound(
          bucket.begin(), bucket.end(), x,
          [](const Occurrence& occ, NodeId node) { return occ.node < node; });
      for (; lo != bucket.end() && lo->node == x; ++lo) {
        ++cost_.index_tuples_read;
        const NodeId v = lo->source;
        if (v == u) continue;
        if (meet_epoch_[v] == epoch_) continue;  // already met this sample
        meet_epoch_[v] = epoch_;
        scores[v] += inv_r;
      }
    }
  }

  ScoreList out;
  out.reserve(scores.size() + 1);
  scores.ForEach([&](uint64_t key, const double& score) {
    if (score > 0) out.emplace_back(static_cast<NodeId>(key), score);
  });
  out.emplace_back(u, 1.0);
  return out;
}

uint64_t Reads::OptionsHash() const {
  // c shapes the walk termination, (r, t) the index dimensions, and the
  // seed the sampled walks themselves; max_index_entries is only a budget.
  return OptionsHasher()
      .Add("c", options_.c)
      .Add("r", options_.r)
      .Add("t", options_.t)
      .Add("seed", options_.seed)
      .hash();
}

Status Reads::SaveIndex(const std::string& path) const {
  if (index_ == nullptr) {
    return Status::InvalidArgument(
        "READS: no index built; call Preprocess() before SaveIndex()");
  }
  const StoredWalks& walks = *index_;
  ArtifactWriter artifact(path, kReadsKind);
  WriteFingerprint(artifact.AddSection("fingerprint"),
                   MakeFingerprint(graph_, OptionsHash()));
  ByteSink& writer = artifact.AddSection("index");
  writer.WriteVector(walks.traj_off);
  writer.WriteVector(walks.traj_pos);

  std::vector<uint64_t> bucket_off;
  bucket_off.reserve(walks.buckets.size() + 1);
  uint64_t total = 0;
  bucket_off.push_back(0);
  for (const auto& bucket : walks.buckets) {
    total += bucket.size();
    bucket_off.push_back(total);
  }
  writer.WriteVector(bucket_off);
  // Stream the occurrence table bucket by bucket (same bytes as one
  // WriteVector of the concatenation, without holding that second copy).
  writer.WritePod(total);
  for (const auto& bucket : walks.buckets) {
    writer.WriteElements(bucket.data(), bucket.size());
  }
  return artifact.Finish();
}

Status Reads::LoadIndex(const std::string& path) {
  const NodeId n = graph_.n();
  const size_t bucket_count =
      static_cast<size_t>(options_.r) * options_.t;
  PRSIM_ASSIGN_OR_RETURN(ArtifactReader artifact,
                         ArtifactReader::Open(path, kReadsKind));
  {
    PRSIM_ASSIGN_OR_RETURN(SectionReader fingerprint,
                           artifact.Section("fingerprint"));
    PRSIM_RETURN_NOT_OK(ReadAndCheckFingerprint(
        fingerprint, MakeFingerprint(graph_, OptionsHash()), path));
  }
  PRSIM_ASSIGN_OR_RETURN(SectionReader reader, artifact.Section("index"));

  StoredWalks walks;
  PRSIM_RETURN_NOT_OK(reader.ReadVector(&walks.traj_off));
  PRSIM_RETURN_NOT_OK(reader.ReadVector(&walks.traj_pos));
  if (walks.traj_off.size() != static_cast<size_t>(n) * options_.r + 1 ||
      walks.traj_off.front() != 0 ||
      walks.traj_off.back() != walks.traj_pos.size()) {
    return Status::IOError("corrupt trajectory offsets in '" + path + "'");
  }
  for (size_t i = 0; i + 1 < walks.traj_off.size(); ++i) {
    if (walks.traj_off[i] > walks.traj_off[i + 1]) {
      return Status::IOError("corrupt trajectory offsets in '" + path + "'");
    }
  }
  for (NodeId pos : walks.traj_pos) {
    if (pos >= n) {
      return Status::IOError("corrupt trajectory position in '" + path +
                             "'");
    }
  }

  std::vector<uint64_t> bucket_off;
  PRSIM_RETURN_NOT_OK(reader.ReadVector(&bucket_off));
  if (bucket_off.size() != bucket_count + 1 || bucket_off.front() != 0) {
    return Status::IOError("corrupt bucket offsets in '" + path + "'");
  }
  for (size_t i = 0; i < bucket_count; ++i) {
    if (bucket_off[i] > bucket_off[i + 1]) {
      return Status::IOError("corrupt bucket offsets in '" + path + "'");
    }
  }
  uint64_t total = 0;
  PRSIM_RETURN_NOT_OK(reader.ReadPod(&total));
  if (total != bucket_off.back() ||
      total > reader.remaining() / sizeof(Occurrence)) {
    return Status::IOError("corrupt occurrence count in '" + path + "'");
  }
  walks.buckets.assign(bucket_count, {});
  for (size_t i = 0; i < bucket_count; ++i) {
    auto& bucket = walks.buckets[i];
    bucket.resize(bucket_off[i + 1] - bucket_off[i]);
    PRSIM_RETURN_NOT_OK(reader.ReadElements(bucket.data(), bucket.size()));
    for (size_t j = 0; j < bucket.size(); ++j) {
      const Occurrence& occ = bucket[j];
      // Query's std::lower_bound requires buckets sorted by node; enforce
      // the invariant here so a crafted file cannot load into silent UB.
      if (occ.node >= n || occ.source >= n ||
          (j > 0 && bucket[j - 1].node > occ.node)) {
        return Status::IOError("corrupt occurrence in '" + path + "'");
      }
    }
  }
  PRSIM_RETURN_NOT_OK(reader.Finish());
  index_ = std::make_shared<const StoredWalks>(std::move(walks));
  meet_epoch_.assign(n, 0);
  epoch_ = 0;
  return Status::OK();
}

size_t Reads::IndexBytes() const {
  if (index_ == nullptr) return 0;
  size_t bytes = index_->traj_off.size() * sizeof(uint32_t) +
                 index_->traj_pos.size() * sizeof(NodeId);
  for (const auto& bucket : index_->buckets) {
    bytes += bucket.size() * sizeof(Occurrence);
  }
  return bytes;
}

}  // namespace prsim
