#include "baselines/reads.h"

#include <algorithm>
#include <cmath>

#include "util/flat_hash_map.h"
#include "util/logging.h"

namespace prsim {

Reads::Reads(const Graph& graph, const ReadsOptions& options)
    : graph_(graph), options_(options), rng_(options.seed) {
  PRSIM_CHECK(options_.r > 0 && options_.t > 0);
}

Status Reads::Preprocess() {
  const NodeId n = graph_.n();
  const uint32_t r = options_.r;
  const uint32_t t = options_.t;
  const double sqrt_c = std::sqrt(options_.c);

  // Rough expected entries: n * r * expected live steps (geometric).
  const double expected_len = sqrt_c / (1.0 - sqrt_c);
  const double expected_entries =
      static_cast<double>(n) * r * std::min<double>(expected_len, t);
  if (expected_entries > static_cast<double>(options_.max_index_entries)) {
    return Status::ResourceExhausted(
        "READS: expected index entries exceed budget");
  }

  StoredWalks walks;
  walks.traj_off.assign(static_cast<size_t>(n) * r + 1, 0);
  walks.buckets.assign(static_cast<size_t>(r) * t, {});

  // Sample and store r truncated sqrt(c)-walks per node. Trajectories hold
  // positions for steps 1..len (step 0 is the source itself).
  for (NodeId v = 0; v < n; ++v) {
    for (uint32_t j = 0; j < r; ++j) {
      NodeId pos = v;
      for (uint32_t i = 1; i <= t; ++i) {
        if (rng_.NextDouble() >= sqrt_c) break;
        const uint32_t din = graph_.InDegree(pos);
        if (din == 0) break;
        pos = graph_.InNeighborAt(pos, rng_.NextIndex(din));
        walks.traj_pos.push_back(pos);
        walks.buckets[static_cast<size_t>(j) * t + (i - 1)].push_back(
            {pos, v});
      }
      walks.traj_off[static_cast<size_t>(v) * r + j + 1] =
          static_cast<uint32_t>(walks.traj_pos.size());
    }
  }
  if (walks.traj_pos.size() > options_.max_index_entries) {
    return Status::ResourceExhausted("READS: index entries exceed budget");
  }
  for (auto& bucket : walks.buckets) {
    std::sort(bucket.begin(), bucket.end(),
              [](const Occurrence& a, const Occurrence& b) {
                return a.node < b.node;
              });
  }
  index_ = std::make_shared<const StoredWalks>(std::move(walks));
  meet_epoch_.assign(n, 0);
  epoch_ = 0;
  return Status::OK();
}

ScoreList Reads::Query(NodeId u) {
  PRSIM_CHECK(index_ != nullptr) << "call Preprocess() before Query()";
  PRSIM_CHECK(u < graph_.n());
  cost_ = QueryCost{};
  const StoredWalks& walks = *index_;
  const uint32_t r = options_.r;
  const uint32_t t = options_.t;
  const double inv_r = 1.0 / static_cast<double>(r);
  FlatHashMap<double> scores(1024);

  for (uint32_t j = 0; j < r; ++j) {
    ++epoch_;  // one epoch per sample: a v meeting at several steps counts once
    const uint32_t begin = walks.traj_off[static_cast<size_t>(u) * r + j];
    const uint32_t end = walks.traj_off[static_cast<size_t>(u) * r + j + 1];
    for (uint32_t i = 0; i < end - begin && i < t; ++i) {
      const NodeId x = walks.traj_pos[begin + i];
      const auto& bucket = walks.buckets[static_cast<size_t>(j) * t + i];
      // All sources whose walk j is also at x at step i + 1.
      auto lo = std::lower_bound(
          bucket.begin(), bucket.end(), x,
          [](const Occurrence& occ, NodeId node) { return occ.node < node; });
      for (; lo != bucket.end() && lo->node == x; ++lo) {
        ++cost_.index_tuples_read;
        const NodeId v = lo->source;
        if (v == u) continue;
        if (meet_epoch_[v] == epoch_) continue;  // already met this sample
        meet_epoch_[v] = epoch_;
        scores[v] += inv_r;
      }
    }
  }

  ScoreList out;
  out.reserve(scores.size() + 1);
  scores.ForEach([&](uint64_t key, const double& score) {
    if (score > 0) out.emplace_back(static_cast<NodeId>(key), score);
  });
  out.emplace_back(u, 1.0);
  return out;
}

size_t Reads::IndexBytes() const {
  if (index_ == nullptr) return 0;
  size_t bytes = index_->traj_off.size() * sizeof(uint32_t) +
                 index_->traj_pos.size() * sizeof(NodeId);
  for (const auto& bucket : index_->buckets) {
    bytes += bucket.size() * sizeof(Occurrence);
  }
  return bytes;
}

}  // namespace prsim
