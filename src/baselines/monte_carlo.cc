#include "baselines/monte_carlo.h"

#include <cmath>

#include "util/logging.h"

namespace prsim {

MonteCarloSimRank::MonteCarloSimRank(const Graph& graph,
                                     const MonteCarloOptions& options)
    : graph_(graph),
      options_(options),
      walker_(graph, options.c),
      rng_(options.seed) {}

uint64_t MonteCarloSimRank::SamplesFor(double eps, double delta) {
  PRSIM_CHECK(eps > 0 && delta > 0 && delta < 1);
  return static_cast<uint64_t>(
      std::ceil(std::log(2.0 / delta) / (2.0 * eps * eps)));
}

double MonteCarloSimRank::EstimatePair(NodeId u, NodeId v) {
  return walker_.EstimateSimRank(u, v, options_.samples, rng_);
}

ScoreList MonteCarloSimRank::Query(NodeId u) {
  PRSIM_CHECK(u < graph_.n());
  ScoreList out;
  out.reserve(64);
  for (NodeId v = 0; v < graph_.n(); ++v) {
    if (v == u) continue;
    const double estimate =
        walker_.EstimateSimRank(u, v, options_.samples, rng_);
    if (estimate > 0) out.emplace_back(v, estimate);
  }
  out.emplace_back(u, 1.0);
  return out;
}

}  // namespace prsim
