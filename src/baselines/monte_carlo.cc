#include "baselines/monte_carlo.h"

#include <cmath>

#include "util/logging.h"

namespace prsim {

MonteCarloSimRank::MonteCarloSimRank(const Graph& graph,
                                     const MonteCarloOptions& options)
    : graph_(graph),
      options_(options),
      walker_(graph, options.c),
      rng_(options.seed) {}

uint64_t MonteCarloSimRank::SamplesFor(double eps, double delta) {
  PRSIM_CHECK(eps > 0 && delta > 0 && delta < 1);
  return static_cast<uint64_t>(
      std::ceil(std::log(2.0 / delta) / (2.0 * eps * eps)));
}

double MonteCarloSimRank::EstimatePair(NodeId u, NodeId v) {
  return walker_.EstimateSimRank(u, v, options_.samples, rng_);
}

double MonteCarloSimRank::QueryPair(NodeId u, NodeId v) {
  PRSIM_CHECK(u < graph_.n() && v < graph_.n());
  cost_ = QueryCost{};
  if (u == v) return 1.0;
  cost_.meeting_tests = options_.samples;
  cost_.walks = 2 * options_.samples;
  return EstimatePair(u, v);
}

std::unique_ptr<SingleSourceSimRank> MonteCarloSimRank::CloneWithSeed(
    uint64_t seed) const {
  MonteCarloOptions options = options_;
  options.seed = seed;
  return std::make_unique<MonteCarloSimRank>(graph_, options);
}

ScoreList MonteCarloSimRank::Query(NodeId u) {
  PRSIM_CHECK(u < graph_.n());
  cost_ = QueryCost{};
  ScoreList out;
  out.reserve(64);
  for (NodeId v = 0; v < graph_.n(); ++v) {
    if (v == u) continue;
    const double estimate =
        walker_.EstimateSimRank(u, v, options_.samples, rng_);
    cost_.meeting_tests += options_.samples;
    if (estimate > 0) out.emplace_back(v, estimate);
  }
  cost_.walks = 2 * cost_.meeting_tests;
  out.emplace_back(u, 1.0);
  return out;
}

}  // namespace prsim
