#include "baselines/power_method.h"

#include <algorithm>

#include "util/logging.h"
#include "util/parallel.h"

namespace prsim {

PowerMethodSimRank::PowerMethodSimRank(const Graph& graph,
                                       const PowerMethodOptions& options)
    : graph_(graph), options_(options), n_(graph.n()) {}

Status PowerMethodSimRank::Preprocess() {
  if (n_ > options_.max_nodes) {
    return Status::ResourceExhausted(
        "PowerMethod: n = " + std::to_string(n_) + " exceeds max_nodes = " +
        std::to_string(options_.max_nodes) + " (O(n^2) memory)");
  }
  const size_t n = n_;
  const double c = options_.c;
  std::vector<double> matrix(n * n, 0.0);
  for (size_t u = 0; u < n; ++u) matrix[u * n + u] = 1.0;

  std::vector<double> half(n * n);  // M1(u, v) = avg_{u' in I(u)} S(u', v)
  std::vector<double> next(n * n);

  for (uint32_t iter = 0; iter < options_.iterations; ++iter) {
    // First pass: average over in-neighbors along the row index.
    ParallelFor(0, n, [&](size_t u) {
      double* out_row = &half[u * n];
      const auto ins = graph_.InNeighbors(static_cast<NodeId>(u));
      if (ins.empty()) {
        std::fill(out_row, out_row + n, 0.0);
        return;
      }
      std::fill(out_row, out_row + n, 0.0);
      for (NodeId up : ins) {
        const double* in_row = &matrix[static_cast<size_t>(up) * n];
        for (size_t v = 0; v < n; ++v) out_row[v] += in_row[v];
      }
      const double inv = 1.0 / static_cast<double>(ins.size());
      for (size_t v = 0; v < n; ++v) out_row[v] *= inv;
    });
    // Second pass: average over in-neighbors along the column index, apply
    // the decay, and pin the diagonal (the elementwise max with I reduces to
    // the diagonal because all off-diagonal entries stay below 1).
    ParallelFor(0, n, [&](size_t u) {
      double* out_row = &next[u * n];
      const double* in_row = &half[u * n];
      for (size_t v = 0; v < n; ++v) {
        const auto ins = graph_.InNeighbors(static_cast<NodeId>(v));
        if (u == v) {
          out_row[v] = 1.0;
          continue;
        }
        if (ins.empty()) {
          out_row[v] = 0.0;
          continue;
        }
        double sum = 0.0;
        for (NodeId vp : ins) sum += in_row[vp];
        out_row[v] = c * sum / static_cast<double>(ins.size());
      }
    });
    matrix.swap(next);
  }
  matrix_ = std::make_shared<const std::vector<double>>(std::move(matrix));
  return Status::OK();
}

ScoreList PowerMethodSimRank::Query(NodeId u) {
  PRSIM_CHECK(preprocessed()) << "call Preprocess() before Query()";
  PRSIM_CHECK(u < n_);
  cost_ = QueryCost{};
  cost_.index_tuples_read = n_;
  ScoreList out;
  const double* row = matrix_->data() + static_cast<size_t>(u) * n_;
  for (NodeId v = 0; v < n_; ++v) {
    if (row[v] > 0) out.emplace_back(v, row[v]);
  }
  return out;
}

}  // namespace prsim
