// SLING (Tian & Xiao [32]): hitting-probability index for SimRank.
//
// SLING evaluates s(u, v) = sum_l sum_w h_l(u, w) h_l(v, w) eta(w) (paper
// Eq. 5) from a fully materialized index:
//   * eta(w) for every node, estimated by Monte Carlo pair-walks — the
//     O(n log(n/delta)/eps^2) preprocessing PRSim's on-the-fly eta*pi
//     estimation eliminates;
//   * hitting probabilities h_l(v, w) above eps for *every* target w,
//     computed by backward search from every node and stored in both a
//     source-major view (for the query node) and a (w, l)-major inverted
//     view — the O(n/eps) index PRSim shrinks to hubs only.
//
// Queries are fast index joins; the cost is paid in index size and
// preprocessing time, which is exactly how SLING behaves in Figures 4/5.
// A memory budget aborts preprocessing gracefully on configurations that
// would not fit, mirroring the paper's omitted (out-of-memory) data points.

#ifndef PRSIM_BASELINES_SLING_H_
#define PRSIM_BASELINES_SLING_H_

#include <cstdint>
#include <vector>

#include "core/single_source.h"
#include "graph/graph.h"
#include "ppr/walker.h"
#include "util/flat_hash_map2.h"
#include "util/rng.h"

namespace prsim {

struct SlingOptions {
  double c = 0.6;
  double eps = 0.1;    ///< absolute error target eps_a
  double delta = 1e-4; ///< failure probability (enters the eta sample count)
  /// eta Monte Carlo samples per node = ceil(alpha_eta * 3 ln(n/delta) /
  /// eps^2) — the Theta(log(n/delta)/eps^2) preprocessing term [32] that
  /// PRSim's on-the-fly estimation removes. Capped below.
  double alpha_eta = 1.0;
  uint64_t max_eta_samples = 200000;
  /// Abort preprocessing if the index would exceed this many stored tuples.
  uint64_t max_index_tuples = 200000000;
  uint32_t max_level = 64;
  size_t threads = 0;
  uint64_t seed = 13;
};

class Sling : public SingleSourceSimRank {
 public:
  Sling(const Graph& graph, const SlingOptions& options);

  std::string name() const override { return "SLING"; }
  NodeId node_count() const override { return graph_.n(); }

  Status Preprocess() override;
  ScoreList Query(NodeId u) override;

  /// Persists the full index (eta, source-major view, inverted view) as a
  /// fingerprinted artifact. The options hash covers everything that shapes
  /// the index contents, including the build seed (eta is Monte Carlo).
  Status SaveIndex(const std::string& path) const override;
  Status LoadIndex(const std::string& path) override;

  /// Queries are deterministic index joins over an immutable index, so the
  /// clone shares it in O(1) (the seed only enters eta estimation at build
  /// time).
  std::unique_ptr<SingleSourceSimRank> CloneWithSeed(
      uint64_t seed) const override {
    SlingOptions options = options_;
    options.seed = seed;
    auto clone = std::make_unique<Sling>(graph_, options);
    clone->index_ = index_;
    return clone;
  }
  uint64_t seed() const override { return options_.seed; }

  size_t IndexBytes() const override;
  bool IsIndexBased() const override { return true; }

  double eta(NodeId w) const { return index_->eta[w]; }
  bool preprocessed() const { return index_ != nullptr; }

 private:
  // Source-major view: for query node u, all (level, w, h_l(u, w)).
  struct SourceEntry {
    NodeId w;
    uint32_t level;
    float h;
  };
  // Inverted view: for (w, level), all (v, h_l(v, w)); flattened CSR keyed by
  // PackNodeLevel(w, level).
  struct TargetList {
    uint64_t begin = 0;
    uint64_t end = 0;
  };
  /// The immutable built index, shared across clones.
  struct Index {
    std::vector<double> eta;
    std::vector<std::vector<SourceEntry>> source_index;
    FlatHashMap2<TargetList> target_lists{1024};
    std::vector<std::pair<NodeId, float>> target_payload;
  };

  uint64_t OptionsHash() const;

  const Graph& graph_;
  SlingOptions options_;
  Walker walker_;
  std::shared_ptr<const Index> index_;
};

}  // namespace prsim

#endif  // PRSIM_BASELINES_SLING_H_
