// Classic Monte Carlo SimRank estimation (Fogaras & Racz [12], also [32]).
//
// Pairwise: sample nr pairs of sqrt(c)-walks from (u, v); the meeting
// fraction estimates s(u, v) with additive error eps for
// nr = O(log(1/delta)/eps^2) (Hoeffding). Single-source: pair walk j of u
// with walk j of every v — O(n * nr) per query, the bound every algorithm in
// the paper is trying to beat. The pairwise estimator doubles as this
// library's high-precision ground-truth oracle on graphs too large for the
// power method.

#ifndef PRSIM_BASELINES_MONTE_CARLO_H_
#define PRSIM_BASELINES_MONTE_CARLO_H_

#include <cstdint>

#include "core/single_source.h"
#include "graph/graph.h"
#include "ppr/walker.h"
#include "util/rng.h"

namespace prsim {

struct MonteCarloOptions {
  double c = 0.6;
  /// Walk pairs per estimated value.
  uint64_t samples = 10000;
  uint64_t seed = 7;
};

class MonteCarloSimRank : public SingleSourceSimRank {
 public:
  MonteCarloSimRank(const Graph& graph, const MonteCarloOptions& options);

  std::string name() const override { return "MonteCarlo"; }
  NodeId node_count() const override { return graph_.n(); }

  /// O(n * samples): estimates s(u, v) for every v by pairing fresh walks.
  ScoreList Query(NodeId u) override;

  /// Native pair estimator: O(samples) instead of a full O(n * samples)
  /// single-source query.
  double QueryPair(NodeId u, NodeId v) override;

  std::unique_ptr<SingleSourceSimRank> CloneWithSeed(
      uint64_t seed) const override;
  uint64_t seed() const override { return options_.seed; }
  void Reseed(uint64_t seed) override {
    options_.seed = seed;
    rng_.Reseed(seed);
  }

  /// Pairwise estimate of s(u, v).
  double EstimatePair(NodeId u, NodeId v);

  /// Number of walk pairs needed for additive error eps with probability
  /// 1 - delta under Hoeffding.
  static uint64_t SamplesFor(double eps, double delta);

 private:
  const Graph& graph_;
  MonteCarloOptions options_;
  Walker walker_;
  Rng rng_;
};

}  // namespace prsim

#endif  // PRSIM_BASELINES_MONTE_CARLO_H_
