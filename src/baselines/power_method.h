// Exact all-pairs SimRank via the power method (Jeh & Widom [15]).
//
// Iterates S <- (c A^T S A) v I elementwise (paper Eq. 14), realized as two
// in-neighbor averaging passes per iteration, in O(iterations * n * m) time
// and O(n^2) memory. Infeasible beyond small graphs — exactly the limitation
// that motivates single-source algorithms — but it is the gold standard this
// library uses as ground truth in tests and pooled evaluation on small and
// medium graphs.

#ifndef PRSIM_BASELINES_POWER_METHOD_H_
#define PRSIM_BASELINES_POWER_METHOD_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/single_source.h"
#include "graph/graph.h"
#include "util/status.h"

namespace prsim {

struct PowerMethodOptions {
  double c = 0.6;
  /// Iterations; the residual after k iterations is at most c^k, so 30
  /// iterations give ~2e-7 for c = 0.6.
  uint32_t iterations = 30;
  /// Hard cap on n: the O(n^2) matrix refuses to materialize above this.
  NodeId max_nodes = 6000;
};

/// \brief Exact SimRank oracle over one graph.
class PowerMethodSimRank : public SingleSourceSimRank {
 public:
  PowerMethodSimRank(const Graph& graph, const PowerMethodOptions& options);

  std::string name() const override { return "PowerMethod"; }
  NodeId node_count() const override { return graph_.n(); }

  /// Materializes the full SimRank matrix.
  Status Preprocess() override;

  /// Returns the exact row s(u, .), including zero-suppressed entries.
  ScoreList Query(NodeId u) override;

  /// Native pair estimator: an O(1) matrix lookup.
  double QueryPair(NodeId u, NodeId v) override {
    PRSIM_CHECK(preprocessed()) << "call Preprocess() before QueryPair()";
    PRSIM_CHECK(u < n_ && v < n_);
    cost_ = QueryCost{};
    cost_.index_tuples_read = 1;
    return SimRank(u, v);
  }

  /// The method is deterministic, so the seed is ignored; the clone shares
  /// the immutable materialized matrix (O(1)) and answers without
  /// re-running Preprocess().
  std::unique_ptr<SingleSourceSimRank> CloneWithSeed(
      uint64_t /*seed*/) const override {
    auto clone = std::make_unique<PowerMethodSimRank>(graph_, options_);
    clone->matrix_ = matrix_;
    return clone;
  }

  size_t IndexBytes() const override {
    return matrix_ == nullptr ? 0 : matrix_->size() * sizeof(double);
  }
  bool IsIndexBased() const override { return true; }

  /// Exact pairwise lookup (Preprocess must have run).
  double SimRank(NodeId u, NodeId v) const {
    return (*matrix_)[static_cast<size_t>(u) * n_ + v];
  }

  bool preprocessed() const { return matrix_ != nullptr; }

 private:
  const Graph& graph_;
  PowerMethodOptions options_;
  NodeId n_;
  /// Row-major n x n matrix; immutable once built, shared across clones.
  std::shared_ptr<const std::vector<double>> matrix_;
};

}  // namespace prsim

#endif  // PRSIM_BASELINES_POWER_METHOD_H_
