// TopSim (Lee et al. [20]): truncated walk-enumeration similarity search.
//
// TopSim evaluates the walk-pair formulation of SimRank restricted to depth
// T: it enumerates reverse walks of length l <= T from the query node u
// (probability mass 1/d_in per step), and for each reached (w, l) expands
// forward along out-edges l levels to score candidates v with
// c^l * p(u -> w) * p(v -> w). Three pruning knobs keep the enumeration
// tractable and give the method its characteristic speed/accuracy tradeoff:
//   * T     — walk depth cap (default 3);
//   * 1/h   — degree threshold: at nodes with in-degree above 1/h only 1/h
//             sampled in-neighbors are expanded (the TopSim-SM trimming);
//   * eta_prune / H — probability floor and per-level width cap.
//
// Like the original, this is a heuristic top-k method: no error guarantee,
// and meeting multiplicity is not corrected — the accuracy benches show
// exactly the plateau visible for TOPSIM in Figures 2/3.

#ifndef PRSIM_BASELINES_TOPSIM_H_
#define PRSIM_BASELINES_TOPSIM_H_

#include <cstdint>
#include <vector>

#include "core/single_source.h"
#include "graph/graph.h"
#include "util/flat_hash_map.h"
#include "util/rng.h"

namespace prsim {

struct TopSimOptions {
  double c = 0.6;
  uint32_t depth = 3;          ///< T
  uint32_t degree_cap = 100;   ///< 1/h
  double eta_prune = 0.001;    ///< similarity/probability floor
  uint32_t width = 100;        ///< H: entries expanded per level
  uint64_t seed = 29;
};

class TopSim : public SingleSourceSimRank {
 public:
  TopSim(const Graph& graph, const TopSimOptions& options);

  std::string name() const override { return "TopSim"; }
  NodeId node_count() const override { return graph_.n(); }

  ScoreList Query(NodeId u) override;

  std::unique_ptr<SingleSourceSimRank> CloneWithSeed(
      uint64_t seed) const override {
    TopSimOptions options = options_;
    options.seed = seed;
    return std::make_unique<TopSim>(graph_, options);
  }
  uint64_t seed() const override { return options_.seed; }
  void Reseed(uint64_t seed) override {
    options_.seed = seed;
    rng_.Reseed(seed);
  }

 private:
  /// Keeps the `width` heaviest entries of a frontier map, dropping the
  /// rest. Deliberately on the v1 map (see util/flat_hash_map.h): the
  /// nth_element width cut breaks mass ties by ForEach slot order, so the
  /// map flavor is part of TopSim's output bits.
  std::vector<std::pair<NodeId, double>> TrimFrontier(
      const FlatHashMap<double>& frontier) const;

  const Graph& graph_;
  TopSimOptions options_;
  Rng rng_;
};

}  // namespace prsim

#endif  // PRSIM_BASELINES_TOPSIM_H_
