// READS (Jiang et al. [16]): stored-walk index for SimRank.
//
// Index: r sqrt(c)-walks from every node, truncated at depth t, plus an
// inverted occurrence table mapping (sample j, step i, node x) to the sources
// whose j-th walk is at x at step i. A query pairs the stored walk j of u
// with the stored walk j of every other node: the first step at which the
// two walks coincide is a meeting, and the meeting fraction over r samples
// estimates s(u, v).
//
// The published system additionally compresses the walk set into trees and
// supports dynamic updates (READS-D / READS-Rq); this implementation keeps
// the static estimator and the O(n r) index/query asymptotics, which are what
// the paper's comparison exercises (query time comparable to Monte Carlo,
// index size growing to memory-exhaustion on large graphs — Figure 4).

#ifndef PRSIM_BASELINES_READS_H_
#define PRSIM_BASELINES_READS_H_

#include <cstdint>
#include <vector>

#include "core/single_source.h"
#include "graph/graph.h"
#include "util/rng.h"

namespace prsim {

struct ReadsOptions {
  double c = 0.6;
  uint32_t r = 100;  ///< stored walks per node (paper default 100)
  uint32_t t = 10;   ///< walk depth cap (paper default 10)
  /// Abort preprocessing above this many stored walk positions.
  uint64_t max_index_entries = 400000000;
  uint64_t seed = 23;
};

class Reads : public SingleSourceSimRank {
 public:
  Reads(const Graph& graph, const ReadsOptions& options);

  std::string name() const override { return "READS"; }
  NodeId node_count() const override { return graph_.n(); }

  Status Preprocess() override;
  ScoreList Query(NodeId u) override;

  /// Persists the stored walks and the inverted occurrence table as a
  /// fingerprinted artifact. The options hash includes the seed: the walk
  /// set is a sample, so indexes from different seeds are different indexes.
  Status SaveIndex(const std::string& path) const override;
  Status LoadIndex(const std::string& path) override;

  /// The stored-walk index is immutable after Preprocess(), so the clone
  /// shares it in O(1) (queries are index joins; the seed only matters at
  /// build time). Per-query scratch stays per instance.
  std::unique_ptr<SingleSourceSimRank> CloneWithSeed(
      uint64_t seed) const override {
    ReadsOptions options = options_;
    options.seed = seed;
    auto clone = std::make_unique<Reads>(graph_, options);
    clone->index_ = index_;
    if (clone->index_ != nullptr) clone->meet_epoch_.assign(graph_.n(), 0);
    return clone;
  }
  uint64_t seed() const override { return options_.seed; }
  void Reseed(uint64_t seed) override {
    options_.seed = seed;
    rng_.Reseed(seed);
  }

  size_t IndexBytes() const override;
  bool IsIndexBased() const override { return true; }

 private:
  /// One stored occurrence: source v's walk j is at node `node` at step i
  /// (j and i are implicit in the bucket).
  struct Occurrence {
    NodeId node;
    NodeId source;
  };

  /// The immutable stored-walk index, shared across clones.
  ///
  /// walk_pos_[(j * n + v) * t + i] would be too large, so walks are stored
  /// per (j, step) in the inverted table only, plus a compact per-source
  /// trajectory for the query node side: packed positions with offsets.
  struct StoredWalks {
    std::vector<uint32_t> traj_off;  // (n * r + 1) offsets
    std::vector<NodeId> traj_pos;    // concatenated positions, steps 1..len
    /// Inverted table: bucket (j, i) -> occurrences sorted by node.
    std::vector<std::vector<Occurrence>> buckets;  // size r * t
  };

  uint64_t OptionsHash() const;

  const Graph& graph_;
  ReadsOptions options_;
  Rng rng_;
  std::shared_ptr<const StoredWalks> index_;

  std::vector<uint32_t> meet_epoch_;  // scratch: first-meeting dedup
  uint32_t epoch_ = 0;
};

}  // namespace prsim

#endif  // PRSIM_BASELINES_READS_H_
