#include "baselines/probesim.h"

#include <cmath>

#include "util/logging.h"

namespace prsim {

ProbeSim::ProbeSim(const Graph& graph, const ProbeSimOptions& options)
    : graph_(graph),
      options_(options),
      walker_(graph, options.c),
      rng_(options.seed) {
  PRSIM_CHECK(options_.eps > 0);
  samples_ = static_cast<uint64_t>(
      std::ceil(options_.alpha / (options_.eps * options_.eps)));
  samples_ = std::max<uint64_t>(samples_, 1);
  sqrt_c_ = walker_.sqrt_c();
}

void ProbeSim::Probe(NodeId w, uint32_t level,
                     const std::vector<NodeId>& trajectory,
                     FlatHashMap<double>& scores) {
  const double inv_samples = 1.0 / static_cast<double>(samples_);
  cur_.clear();
  cur_[w] = 1.0;
  for (uint32_t i = 1; i <= level; ++i) {
    next_.clear();
    // Expansion level i reaches nodes that are l - i walk-steps away from
    // their own start; first-meeting correction skips the node the u-walk
    // occupies at that step (trajectory[level - i]; for i == level this is u
    // itself, excluding the trivial v = u term).
    const NodeId avoid = trajectory[level - i];
    cur_.ForEach([&](uint64_t key, const double& mass) {
      const auto x = static_cast<NodeId>(key);
      const auto outs = graph_.OutNeighbors(x);
      const auto degs = graph_.OutNeighborInDegrees(x);
      for (size_t e = 0; e < outs.size(); ++e) {
        const NodeId y = outs[e];
        if (y == avoid) continue;
        next_[y] += sqrt_c_ * mass / degs[e];
      }
    });
    std::swap(cur_, next_);
    if (cur_.empty()) return;
  }
  cur_.ForEach([&](uint64_t key, const double& mass) {
    scores[key] += mass * inv_samples;
  });
}

ScoreList ProbeSim::Query(NodeId u) {
  PRSIM_CHECK(u < graph_.n());
  cost_ = QueryCost{};
  cost_.walks = samples_;
  FlatHashMap<double> scores(1024);
  std::vector<NodeId> trajectory;
  trajectory.reserve(16);

  for (uint64_t sample = 0; sample < samples_; ++sample) {
    // Sample the trajectory of one sqrt(c)-walk from u: positions while the
    // walk is alive, including the start.
    trajectory.clear();
    trajectory.push_back(u);
    NodeId pos = u;
    for (uint32_t step = 1; step < kMaxWalkLevel; ++step) {
      if (rng_.NextDouble() >= sqrt_c_) break;
      const uint32_t din = graph_.InDegree(pos);
      if (din == 0) break;
      pos = graph_.InNeighborAt(pos, rng_.NextIndex(din));
      trajectory.push_back(pos);
    }
    for (uint32_t level = 1; level < trajectory.size(); ++level) {
      ++cost_.backward_walks;
      Probe(trajectory[level], level, trajectory, scores);
    }
  }

  ScoreList out;
  out.reserve(scores.size() + 1);
  scores.ForEach([&](uint64_t key, const double& score) {
    const auto v = static_cast<NodeId>(key);
    if (v != u && score > 0) out.emplace_back(v, score);
  });
  out.emplace_back(u, 1.0);
  return out;
}

}  // namespace prsim
