#include "baselines/sling.h"

#include <cmath>
#include <mutex>

#include "ppr/backward_search.h"
#include "util/logging.h"
#include "util/parallel.h"

namespace prsim {

Sling::Sling(const Graph& graph, const SlingOptions& options)
    : graph_(graph), options_(options), walker_(graph, options.c) {
  PRSIM_CHECK(options_.eps > 0);
}

Status Sling::Preprocess() {
  const NodeId n = graph_.n();
  const double sqrt_c = walker_.sqrt_c();
  const double term = 1.0 - sqrt_c;

  // Phase 1: eta(w) for every node by Monte Carlo pair-walks. This is the
  // O(n log(n/delta)/eps^2) preprocessing bottleneck the paper attributes
  // to SLING (Section 2).
  const double log_factor =
      3.0 * std::log(std::max<double>(n, 2) / options_.delta);
  uint64_t eta_samples = static_cast<uint64_t>(std::ceil(
      options_.alpha_eta * log_factor / (options_.eps * options_.eps)));
  eta_samples = std::min(std::max<uint64_t>(eta_samples, 100),
                         options_.max_eta_samples);
  eta_.assign(n, 1.0);
  ParallelFor(
      0, n,
      [&](size_t w) {
        Rng rng(options_.seed ^ (0x9e3779b97f4a7c15ULL * (w + 1)));
        eta_[w] =
            walker_.EstimateEta(static_cast<NodeId>(w), eta_samples, rng);
      },
      options_.threads);

  // Phase 2: backward search from every target node, keeping reserves above
  // the error threshold. Reserves psi approximate pi_l = (1-sqrt_c) h_l, so
  // the h threshold eps translates to a reserve threshold (1-sqrt_c) eps.
  BackwardSearchOptions search;
  search.c = options_.c;
  // SLING's theoretical residue bound; the extra constant matches the
  // (1-sqrt_c)/12-style slack used for PRSim so errors sum to eps.
  search.rmax = term * options_.eps / 4.0;
  search.max_level = options_.max_level;
  search.keep_threshold = term * options_.eps / 4.0;

  source_index_.assign(n, {});
  // Per-target results are collected serially per chunk under a mutex to
  // keep memory accounting exact; backward searches dominate the cost.
  std::mutex mu;
  uint64_t total_tuples = 0;
  bool exhausted = false;
  const size_t threads =
      options_.threads == 0 ? DefaultThreadCount() : options_.threads;
  ParallelFor(
      0, n,
      [&](size_t w) {
        {
          std::lock_guard<std::mutex> lock(mu);
          if (exhausted) return;
        }
        BackwardSearchResult result =
            BackwardSearch(graph_, static_cast<NodeId>(w), search);
        std::lock_guard<std::mutex> lock(mu);
        if (exhausted) return;
        for (uint32_t level = 0; level < result.levels.size(); ++level) {
          const auto& reserves = result.levels[level];
          if (reserves.empty()) continue;
          total_tuples += reserves.size();
          const uint64_t key =
              PackNodeLevel(static_cast<NodeId>(w), level);
          TargetList& list = target_lists_[key];
          list.begin = target_payload_.size();
          for (const auto& [v, psi] : reserves) {
            const float h = psi / static_cast<float>(term);
            target_payload_.emplace_back(v, h);
            source_index_[v].push_back(
                {static_cast<NodeId>(w), level, h});
          }
          list.end = target_payload_.size();
        }
        if (total_tuples > options_.max_index_tuples) exhausted = true;
      },
      threads);
  if (exhausted) {
    eta_.clear();
    source_index_.clear();
    target_payload_.clear();
    return Status::ResourceExhausted(
        "SLING: index exceeds max_index_tuples = " +
        std::to_string(options_.max_index_tuples));
  }
  preprocessed_ = true;
  return Status::OK();
}

ScoreList Sling::Query(NodeId u) {
  PRSIM_CHECK(preprocessed_) << "call Preprocess() before Query()";
  PRSIM_CHECK(u < graph_.n());
  FlatHashMap<double> scores(1024);
  for (const SourceEntry& entry : source_index_[u]) {
    const uint64_t key = PackNodeLevel(entry.w, entry.level);
    const TargetList* list = target_lists_.Find(key);
    if (list == nullptr) continue;
    const double lhs = static_cast<double>(entry.h) * eta_[entry.w];
    for (uint64_t i = list->begin; i < list->end; ++i) {
      const auto& [v, h] = target_payload_[i];
      scores[v] += lhs * static_cast<double>(h);
    }
  }
  ScoreList out;
  out.reserve(scores.size() + 1);
  scores.ForEach([&](uint64_t key, const double& score) {
    const auto v = static_cast<NodeId>(key);
    if (v != u && score > 0) out.emplace_back(v, score);
  });
  out.emplace_back(u, 1.0);
  return out;
}

size_t Sling::IndexBytes() const {
  size_t bytes = eta_.size() * sizeof(double);
  for (const auto& entries : source_index_) {
    bytes += entries.size() * sizeof(SourceEntry);
  }
  bytes += target_lists_.MemoryBytes();
  bytes += target_payload_.size() * sizeof(std::pair<NodeId, float>);
  return bytes;
}

}  // namespace prsim
