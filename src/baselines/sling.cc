#include "baselines/sling.h"

#include <algorithm>
#include <cmath>
#include <mutex>

#include "core/artifact.h"
#include "ppr/backward_search.h"
#include "util/logging.h"
#include "util/parallel.h"
#include "util/serde.h"

namespace prsim {

namespace {

constexpr char kSlingKind[] = "sling-index";

/// On-disk record of one inverted-view list: PackNodeLevel key plus the
/// [begin, end) range into the target payload.
struct TargetListRecord {
  uint64_t key;
  uint64_t begin;
  uint64_t end;
};

}  // namespace

Sling::Sling(const Graph& graph, const SlingOptions& options)
    : graph_(graph), options_(options), walker_(graph, options.c) {
  PRSIM_CHECK(options_.eps > 0);
}

Status Sling::Preprocess() {
  const NodeId n = graph_.n();
  const double sqrt_c = walker_.sqrt_c();
  const double term = 1.0 - sqrt_c;

  // Phase 1: eta(w) for every node by Monte Carlo pair-walks. This is the
  // O(n log(n/delta)/eps^2) preprocessing bottleneck the paper attributes
  // to SLING (Section 2).
  const double log_factor =
      3.0 * std::log(std::max<double>(n, 2) / options_.delta);
  uint64_t eta_samples = static_cast<uint64_t>(std::ceil(
      options_.alpha_eta * log_factor / (options_.eps * options_.eps)));
  eta_samples = std::min(std::max<uint64_t>(eta_samples, 100),
                         options_.max_eta_samples);
  Index index;
  index.eta.assign(n, 1.0);
  ParallelFor(
      0, n,
      [&](size_t w) {
        Rng rng(options_.seed ^ (0x9e3779b97f4a7c15ULL * (w + 1)));
        index.eta[w] =
            walker_.EstimateEta(static_cast<NodeId>(w), eta_samples, rng);
      },
      options_.threads);

  // Phase 2: backward search from every target node, keeping reserves above
  // the error threshold. Reserves psi approximate pi_l = (1-sqrt_c) h_l, so
  // the h threshold eps translates to a reserve threshold (1-sqrt_c) eps.
  BackwardSearchOptions search;
  search.c = options_.c;
  // SLING's theoretical residue bound; the extra constant matches the
  // (1-sqrt_c)/12-style slack used for PRSim so errors sum to eps.
  search.rmax = term * options_.eps / 4.0;
  search.max_level = options_.max_level;
  search.keep_threshold = term * options_.eps / 4.0;

  index.source_index.assign(n, {});
  // Per-target results are collected serially per chunk under a mutex to
  // keep memory accounting exact; backward searches dominate the cost.
  std::mutex mu;
  uint64_t total_tuples = 0;
  bool exhausted = false;
  const size_t threads =
      options_.threads == 0 ? DefaultThreadCount() : options_.threads;
  ParallelFor(
      0, n,
      [&](size_t w) {
        {
          std::lock_guard<std::mutex> lock(mu);
          if (exhausted) return;
        }
        BackwardSearchResult result =
            BackwardSearch(graph_, static_cast<NodeId>(w), search);
        std::lock_guard<std::mutex> lock(mu);
        if (exhausted) return;
        for (uint32_t level = 0; level < result.levels.size(); ++level) {
          const auto& reserves = result.levels[level];
          if (reserves.empty()) continue;
          total_tuples += reserves.size();
          const uint64_t key =
              PackNodeLevel(static_cast<NodeId>(w), level);
          TargetList& list = index.target_lists[key];
          list.begin = index.target_payload.size();
          for (const auto& [v, psi] : reserves) {
            const float h = psi / static_cast<float>(term);
            index.target_payload.emplace_back(v, h);
            index.source_index[v].push_back(
                {static_cast<NodeId>(w), level, h});
          }
          list.end = index.target_payload.size();
        }
        if (total_tuples > options_.max_index_tuples) exhausted = true;
      },
      threads);
  if (exhausted) {
    return Status::ResourceExhausted(
        "SLING: index exceeds max_index_tuples = " +
        std::to_string(options_.max_index_tuples));
  }
  index_ = std::make_shared<const Index>(std::move(index));
  return Status::OK();
}

ScoreList Sling::Query(NodeId u) {
  PRSIM_CHECK(index_ != nullptr) << "call Preprocess() before Query()";
  PRSIM_CHECK(u < graph_.n());
  cost_ = QueryCost{};
  const Index& index = *index_;
  FlatHashMap2<double> scores(1024);
  for (const SourceEntry& entry : index.source_index[u]) {
    const uint64_t key = PackNodeLevel(entry.w, entry.level);
    const TargetList* list = index.target_lists.Find(key);
    if (list == nullptr) continue;
    cost_.index_tuples_read += list->end - list->begin;
    const double lhs = static_cast<double>(entry.h) * index.eta[entry.w];
    for (uint64_t i = list->begin; i < list->end; ++i) {
      const auto& [v, h] = index.target_payload[i];
      scores[v] += lhs * static_cast<double>(h);
    }
  }
  ScoreList out;
  out.reserve(scores.size() + 1);
  scores.ForEach([&](uint64_t key, const double& score) {
    const auto v = static_cast<NodeId>(key);
    if (v != u && score > 0) out.emplace_back(v, score);
  });
  out.emplace_back(u, 1.0);
  return out;
}

uint64_t Sling::OptionsHash() const {
  // Everything that shapes the index contents. Thread count and the tuple
  // budget only change how (or whether) the build completes, never what the
  // finished index holds; the seed does (eta is Monte Carlo).
  return OptionsHasher()
      .Add("c", options_.c)
      .Add("eps", options_.eps)
      .Add("delta", options_.delta)
      .Add("alpha_eta", options_.alpha_eta)
      .Add("max_eta_samples", options_.max_eta_samples)
      .Add("max_level", options_.max_level)
      .Add("seed", options_.seed)
      .hash();
}

Status Sling::SaveIndex(const std::string& path) const {
  if (index_ == nullptr) {
    return Status::InvalidArgument(
        "SLING: no index built; call Preprocess() before SaveIndex()");
  }
  const Index& index = *index_;
  const NodeId n = graph_.n();
  ArtifactWriter artifact(path, kSlingKind);
  WriteFingerprint(artifact.AddSection("fingerprint"),
                   MakeFingerprint(graph_, OptionsHash()));
  ByteSink& writer = artifact.AddSection("index");
  writer.WriteVector(index.eta);
  writer.WriteVector(index.target_payload);

  std::vector<TargetListRecord> records;
  records.reserve(index.target_lists.size());
  index.target_lists.ForEach([&](uint64_t key, const TargetList& list) {
    records.push_back({key, list.begin, list.end});
  });
  // ForEach order follows the hash layout; sort so equal indexes always
  // produce byte-identical artifacts.
  std::sort(records.begin(), records.end(),
            [](const TargetListRecord& a, const TargetListRecord& b) {
              return a.key < b.key;
            });
  writer.WriteVector(records);

  std::vector<uint64_t> offsets;
  offsets.reserve(static_cast<size_t>(n) + 1);
  uint64_t total = 0;
  offsets.push_back(0);
  for (NodeId v = 0; v < n; ++v) {
    total += index.source_index[v].size();
    offsets.push_back(total);
  }
  writer.WriteVector(offsets);
  // Stream the source-major view node by node (same bytes as one
  // WriteVector of the concatenation, without holding that second copy).
  writer.WritePod(total);
  for (NodeId v = 0; v < n; ++v) {
    writer.WriteElements(index.source_index[v].data(),
                         index.source_index[v].size());
  }
  return artifact.Finish();
}

Status Sling::LoadIndex(const std::string& path) {
  const NodeId n = graph_.n();
  PRSIM_ASSIGN_OR_RETURN(ArtifactReader artifact,
                         ArtifactReader::Open(path, kSlingKind));
  {
    PRSIM_ASSIGN_OR_RETURN(SectionReader fingerprint,
                           artifact.Section("fingerprint"));
    PRSIM_RETURN_NOT_OK(ReadAndCheckFingerprint(
        fingerprint, MakeFingerprint(graph_, OptionsHash()), path));
  }
  PRSIM_ASSIGN_OR_RETURN(SectionReader reader, artifact.Section("index"));

  Index index;
  PRSIM_RETURN_NOT_OK(reader.ReadVector(&index.eta));
  PRSIM_RETURN_NOT_OK(reader.ReadVector(&index.target_payload));
  if (index.eta.size() != n) {
    return Status::IOError("corrupt eta block in '" + path + "'");
  }
  for (const auto& [v, h] : index.target_payload) {
    if (v >= n) {
      return Status::IOError("corrupt target payload in '" + path + "'");
    }
  }

  std::vector<TargetListRecord> records;
  PRSIM_RETURN_NOT_OK(reader.ReadVector(&records));
  for (const TargetListRecord& record : records) {
    if (record.begin > record.end ||
        record.end > index.target_payload.size() ||
        index.target_lists.Contains(record.key)) {
      return Status::IOError("corrupt target list in '" + path + "'");
    }
    index.target_lists[record.key] = {record.begin, record.end};
  }

  std::vector<uint64_t> offsets;
  PRSIM_RETURN_NOT_OK(reader.ReadVector(&offsets));
  if (offsets.size() != static_cast<size_t>(n) + 1 || offsets.front() != 0) {
    return Status::IOError("corrupt source index offsets in '" + path + "'");
  }
  for (NodeId v = 0; v < n; ++v) {
    if (offsets[v] > offsets[v + 1]) {
      return Status::IOError("corrupt source index offsets in '" + path +
                             "'");
    }
  }
  uint64_t total = 0;
  PRSIM_RETURN_NOT_OK(reader.ReadPod(&total));
  if (total != offsets.back() ||
      total > reader.remaining() / sizeof(SourceEntry)) {
    return Status::IOError("corrupt source entry count in '" + path + "'");
  }
  index.source_index.assign(n, {});
  for (NodeId v = 0; v < n; ++v) {
    auto& list = index.source_index[v];
    list.resize(offsets[v + 1] - offsets[v]);
    PRSIM_RETURN_NOT_OK(reader.ReadElements(list.data(), list.size()));
    for (const SourceEntry& entry : list) {
      if (entry.w >= n) {
        return Status::IOError("corrupt source entry in '" + path + "'");
      }
    }
  }
  PRSIM_RETURN_NOT_OK(reader.Finish());
  index_ = std::make_shared<const Index>(std::move(index));
  return Status::OK();
}

size_t Sling::IndexBytes() const {
  if (index_ == nullptr) return 0;
  size_t bytes = index_->eta.size() * sizeof(double);
  for (const auto& entries : index_->source_index) {
    bytes += entries.size() * sizeof(SourceEntry);
  }
  bytes += index_->target_lists.MemoryBytes();
  bytes += index_->target_payload.size() * sizeof(std::pair<NodeId, float>);
  return bytes;
}

}  // namespace prsim
