#include "baselines/topsim.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace prsim {

TopSim::TopSim(const Graph& graph, const TopSimOptions& options)
    : graph_(graph), options_(options), rng_(options.seed) {
  PRSIM_CHECK(options_.depth > 0 && options_.width > 0);
}

std::vector<std::pair<NodeId, double>> TopSim::TrimFrontier(
    const FlatHashMap<double>& frontier) const {
  std::vector<std::pair<NodeId, double>> entries;
  entries.reserve(frontier.size());
  frontier.ForEach([&](uint64_t key, const double& mass) {
    if (mass >= options_.eta_prune) {
      entries.emplace_back(static_cast<NodeId>(key), mass);
    }
  });
  if (entries.size() > options_.width) {
    std::nth_element(entries.begin(), entries.begin() + options_.width,
                     entries.end(), [](const auto& a, const auto& b) {
                       return a.second > b.second;
                     });
    entries.resize(options_.width);
  }
  return entries;
}

ScoreList TopSim::Query(NodeId u) {
  PRSIM_CHECK(u < graph_.n());
  cost_ = QueryCost{};  // deterministic truncated enumeration: no sampling
  const double c = options_.c;
  FlatHashMap<double> scores(1024);

  // Reverse enumeration: rev[l] = trimmed (w, p(u -> w in l steps)).
  std::vector<std::vector<std::pair<NodeId, double>>> rev(options_.depth + 1);
  rev[0] = {{u, 1.0}};
  FlatHashMap<double> frontier(256);
  for (uint32_t level = 1; level <= options_.depth; ++level) {
    frontier.clear();
    for (const auto& [x, mass] : rev[level - 1]) {
      const uint32_t din = graph_.InDegree(x);
      if (din == 0) continue;
      const double share = mass / din;
      if (din <= options_.degree_cap) {
        for (NodeId y : graph_.InNeighbors(x)) frontier[y] += share;
      } else {
        // TopSim-SM trimming: sample degree_cap in-neighbors, keeping the
        // per-edge share (underestimates total mass, as the original does).
        for (uint32_t s = 0; s < options_.degree_cap; ++s) {
          frontier[graph_.InNeighborAt(x, rng_.NextIndex(din))] += share;
        }
      }
    }
    rev[level] = TrimFrontier(frontier);
    if (rev[level].empty()) break;
  }

  // Forward scoring: from each (w, l) expand out-edges l levels.
  FlatHashMap<double> fwd(256), fwd_next(256);
  for (uint32_t level = 1; level < rev.size(); ++level) {
    const double decay = std::pow(c, static_cast<double>(level));
    for (const auto& [w, p_u] : rev[level]) {
      if (p_u * decay < options_.eta_prune) continue;
      fwd.clear();
      fwd[w] = 1.0;
      for (uint32_t step = 0; step < level; ++step) {
        fwd_next.clear();
        auto trimmed = TrimFrontier(fwd);
        for (const auto& [x, mass] : trimmed) {
          const auto outs = graph_.OutNeighbors(x);
          const auto degs = graph_.OutNeighborInDegrees(x);
          for (size_t e = 0; e < outs.size(); ++e) {
            fwd_next[outs[e]] += mass / degs[e];
          }
        }
        std::swap(fwd, fwd_next);
        if (fwd.empty()) break;
      }
      fwd.ForEach([&](uint64_t key, const double& p_v) {
        const auto v = static_cast<NodeId>(key);
        if (v == u) return;
        scores[v] += decay * p_u * p_v;
      });
    }
  }

  ScoreList out;
  out.reserve(scores.size() + 1);
  scores.ForEach([&](uint64_t key, const double& score) {
    if (score > 0) out.emplace_back(static_cast<NodeId>(key), score);
  });
  out.emplace_back(u, 1.0);
  return out;
}

}  // namespace prsim
