#include "baselines/tsf.h"

#include <cmath>

#include "core/artifact.h"
#include "util/flat_hash_map2.h"
#include "util/logging.h"
#include "util/serde.h"

namespace prsim {

namespace {

constexpr char kTsfKind[] = "tsf-index";

/// Decorrelates the query-time walk stream from the raw build seed.
constexpr uint64_t kQueryStreamSalt = 0xa24baed4963ee407ULL;

}  // namespace

Tsf::Tsf(const Graph& graph, const TsfOptions& options)
    : graph_(graph), options_(options), rng_(options.seed) {
  PRSIM_CHECK(options_.rg > 0 && options_.rq > 0 && options_.depth > 0);
}

Status Tsf::Preprocess() {
  const NodeId n = graph_.n();
  const uint64_t entries =
      static_cast<uint64_t>(options_.rg) * static_cast<uint64_t>(n);
  if (entries > options_.max_index_entries) {
    return Status::ResourceExhausted(
        "TSF: index of " + std::to_string(entries) +
        " parent pointers exceeds budget");
  }
  std::vector<NodeId> parents(entries);
  for (uint32_t g = 0; g < options_.rg; ++g) {
    NodeId* slice = &parents[static_cast<uint64_t>(g) * n];
    for (NodeId v = 0; v < n; ++v) {
      const uint32_t din = graph_.InDegree(v);
      slice[v] =
          din == 0 ? kNoParent : graph_.InNeighborAt(v, rng_.NextIndex(din));
    }
  }
  parents_ = std::make_shared<const std::vector<NodeId>>(std::move(parents));
  StartQueryStream();
  return Status::OK();
}

void Tsf::StartQueryStream() { rng_.Reseed(options_.seed ^ kQueryStreamSalt); }

uint64_t Tsf::OptionsHash() const {
  // The stored parents depend on (rg, seed) only, but rq and depth define
  // the estimator the index was sized for, so they are fingerprinted too;
  // c and max_index_entries never reach the index bytes.
  return OptionsHasher()
      .Add("rg", options_.rg)
      .Add("rq", options_.rq)
      .Add("depth", options_.depth)
      .Add("seed", options_.seed)
      .hash();
}

Status Tsf::SaveIndex(const std::string& path) const {
  if (parents_ == nullptr) {
    return Status::InvalidArgument(
        "TSF: no index built; call Preprocess() before SaveIndex()");
  }
  ArtifactWriter artifact(path, kTsfKind);
  WriteFingerprint(artifact.AddSection("fingerprint"),
                   MakeFingerprint(graph_, OptionsHash()));
  artifact.AddSection("index").WriteVector(*parents_);
  return artifact.Finish();
}

Status Tsf::LoadIndex(const std::string& path) {
  const NodeId n = graph_.n();
  PRSIM_ASSIGN_OR_RETURN(ArtifactReader artifact,
                         ArtifactReader::Open(path, kTsfKind));
  {
    PRSIM_ASSIGN_OR_RETURN(SectionReader fingerprint,
                           artifact.Section("fingerprint"));
    PRSIM_RETURN_NOT_OK(ReadAndCheckFingerprint(
        fingerprint, MakeFingerprint(graph_, OptionsHash()), path));
  }
  PRSIM_ASSIGN_OR_RETURN(SectionReader reader, artifact.Section("index"));
  std::vector<NodeId> parents;
  PRSIM_RETURN_NOT_OK(reader.ReadVector(&parents));
  if (parents.size() !=
      static_cast<uint64_t>(options_.rg) * static_cast<uint64_t>(n)) {
    return Status::IOError("corrupt parent block in '" + path + "'");
  }
  for (NodeId parent : parents) {
    if (parent >= n && parent != kNoParent) {
      return Status::IOError("corrupt parent pointer in '" + path + "'");
    }
  }
  PRSIM_RETURN_NOT_OK(reader.Finish());
  parents_ = std::make_shared<const std::vector<NodeId>>(std::move(parents));
  StartQueryStream();
  return Status::OK();
}

ScoreList Tsf::Query(NodeId u) {
  PRSIM_CHECK(parents_ != nullptr) << "call Preprocess() before Query()";
  PRSIM_CHECK(u < graph_.n());
  const NodeId n = graph_.n();
  const double c = options_.c;
  const double inv_norm =
      1.0 / (static_cast<double>(options_.rg) * options_.rq);
  cost_ = QueryCost{};
  cost_.walks =
      static_cast<uint64_t>(options_.rg) * static_cast<uint64_t>(options_.rq);
  FlatHashMap2<double> scores(1024);

  child_off_.assign(n + 1, 0);
  child_adj_.resize(n);
  std::vector<NodeId> walk(options_.depth + 1);

  for (uint32_t g = 0; g < options_.rg; ++g) {
    const NodeId* parent = parents_->data() + static_cast<uint64_t>(g) * n;
    // Invert the parent pointers of this one-way graph into child lists so
    // "which nodes are i steps above x" is a BFS down the child CSR.
    std::fill(child_off_.begin(), child_off_.end(), 0);
    for (NodeId v = 0; v < n; ++v) {
      if (parent[v] != kNoParent) ++child_off_[parent[v] + 1];
    }
    for (NodeId v = 0; v < n; ++v) child_off_[v + 1] += child_off_[v];
    {
      std::vector<uint32_t> cursor(child_off_.begin(), child_off_.end() - 1);
      for (NodeId v = 0; v < n; ++v) {
        if (parent[v] != kNoParent) child_adj_[cursor[parent[v]]++] = v;
      }
    }

    for (uint32_t q = 0; q < options_.rq; ++q) {
      // Fresh uniform reverse walk from u on the original graph (TSF uses
      // undiscounted walks of fixed depth; the c^i factor is analytic).
      uint32_t len = 0;
      walk[0] = u;
      for (uint32_t i = 1; i <= options_.depth; ++i) {
        const uint32_t din = graph_.InDegree(walk[i - 1]);
        if (din == 0) break;
        walk[i] = graph_.InNeighborAt(walk[i - 1], rng_.NextIndex(din));
        len = i;
      }
      // Nodes whose parent chain is at walk[i] after i steps are exactly the
      // depth-i descendants of walk[i] in the child forest.
      double weight = 1.0;
      for (uint32_t i = 1; i <= len; ++i) {
        weight *= c;
        frontier_.assign(1, walk[i]);
        for (uint32_t d = 0; d < i && !frontier_.empty(); ++d) {
          frontier_next_.clear();
          for (NodeId x : frontier_) {
            for (uint32_t e = child_off_[x]; e < child_off_[x + 1]; ++e) {
              frontier_next_.push_back(child_adj_[e]);
            }
          }
          std::swap(frontier_, frontier_next_);
        }
        const double contribution = weight * inv_norm;
        for (NodeId v : frontier_) {
          if (v != u) scores[v] += contribution;
        }
      }
    }
  }

  ScoreList out;
  out.reserve(scores.size() + 1);
  scores.ForEach([&](uint64_t key, const double& score) {
    if (score > 0) out.emplace_back(static_cast<NodeId>(key), score);
  });
  out.emplace_back(u, 1.0);
  return out;
}

size_t Tsf::IndexBytes() const {
  return parents_ == nullptr ? 0 : parents_->size() * sizeof(NodeId);
}

}  // namespace prsim
