// TSF (Shao et al. [30]): two-stage random-walk sampling with one-way graphs.
//
// Index: Rg "one-way graphs", each storing one uniformly sampled in-neighbor
// (parent) per node. Within one one-way graph, every node's reverse walk is
// the deterministic parent chain, so a single structure simultaneously
// encodes a coupled walk sample for all n nodes.
//
// Query: for each one-way graph, sample Rq fresh reverse walks from u on the
// original graph; node v scores c^i whenever v's parent chain and u's fresh
// walk coincide at step i. Per the paper's observation, TSF allows *repeated*
// meetings along a pair of walks (and assumes walks are acyclic), so its
// estimates systematically overestimate SimRank — visible in the accuracy
// benches. Meetings are enumerated output-sensitively by descending the
// child-lists of the one-way graph i levels below u's step-i position.

#ifndef PRSIM_BASELINES_TSF_H_
#define PRSIM_BASELINES_TSF_H_

#include <cstdint>
#include <vector>

#include "core/single_source.h"
#include "graph/graph.h"
#include "util/rng.h"

namespace prsim {

struct TsfOptions {
  double c = 0.6;
  uint32_t rg = 300;  ///< one-way graphs in the index (paper default 300)
  uint32_t rq = 40;   ///< fresh walks per one-way graph (paper default 40)
  uint32_t depth = 10;  ///< walk truncation depth t
  /// Abort preprocessing above this many stored parent pointers.
  uint64_t max_index_entries = 400000000;
  uint64_t seed = 17;
};

class Tsf : public SingleSourceSimRank {
 public:
  Tsf(const Graph& graph, const TsfOptions& options);

  std::string name() const override { return "TSF"; }
  NodeId node_count() const override { return graph_.n(); }

  Status Preprocess() override;
  ScoreList Query(NodeId u) override;

  /// Persists the one-way-graph parent pointers as a fingerprinted
  /// artifact. The options hash includes the seed: the parents are a
  /// sample, so indexes from different seeds are different indexes.
  Status SaveIndex(const std::string& path) const override;
  Status LoadIndex(const std::string& path) override;

  /// The clone shares the immutable one-way-graph index in O(1) and reseeds
  /// the query-time walk sampler (query scratch is rebuilt per query).
  std::unique_ptr<SingleSourceSimRank> CloneWithSeed(
      uint64_t seed) const override {
    TsfOptions options = options_;
    options.seed = seed;
    auto clone = std::make_unique<Tsf>(graph_, options);
    clone->parents_ = parents_;
    return clone;
  }
  uint64_t seed() const override { return options_.seed; }
  /// Honors the interface contract exactly: the query stream restarts as a
  /// fresh engine's would (Preprocess() and LoadIndex() both end in
  /// StartQueryStream()), so Reseed(seed()) replays the first query of a
  /// freshly constructed instance.
  void Reseed(uint64_t seed) override {
    options_.seed = seed;
    StartQueryStream();
  }

  size_t IndexBytes() const override;
  bool IsIndexBased() const override { return true; }

 private:
  static constexpr NodeId kNoParent = ~static_cast<NodeId>(0);

  uint64_t OptionsHash() const;

  /// Resets rng_ to the query stream for options_.seed. Both Preprocess()
  /// (which consumes build draws from rng_) and LoadIndex() (which consumes
  /// none) end by calling this, so a loaded index answers queries exactly
  /// like a freshly built one under the same seed.
  void StartQueryStream();

  const Graph& graph_;
  TsfOptions options_;
  Rng rng_;

  /// (*parents_)[g * n + v] = sampled in-neighbor of v in one-way graph g.
  /// Immutable once built, shared across clones.
  std::shared_ptr<const std::vector<NodeId>> parents_;

  // Scratch reused across queries: child CSR of one one-way graph.
  std::vector<uint32_t> child_off_;
  std::vector<NodeId> child_adj_;
  std::vector<NodeId> frontier_, frontier_next_;
};

}  // namespace prsim

#endif  // PRSIM_BASELINES_TSF_H_
