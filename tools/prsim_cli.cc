// prsim_cli — command-line front end for the library.
//
// Subcommands:
//   prsim_cli stats     --graph g.txt
//       Prints n, m, degree extremes and fitted power-law exponents.
//   prsim_cli index     --graph g.txt --out g.idx [--eps 0.1] [--c 0.6]
//                       [--j0 N]
//       Builds the PRSim hub index and serializes it.
//   prsim_cli query     --graph g.txt --source U [--index g.idx]
//                       [--eps 0.1] [--c 0.6] [--k 20] [--seed S]
//       Answers a single-source query (loading the index if given,
//       otherwise preprocessing in-process) and prints the top-k.
//   prsim_cli generate  --out g.txt [--model chunglu|er|ba] [--n N]
//                       [--degree D] [--gamma G] [--seed S] [--undirected]
//       Writes a synthetic edge list.
//
// Graphs are SNAP-style edge-list text ('#' comments) or the binary format
// produced by this tool when the path ends in ".bin".

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/index_io.h"
#include "core/prsim.h"
#include "eval/datasets.h"
#include "gen/barabasi_albert.h"
#include "gen/chung_lu.h"
#include "gen/erdos_renyi.h"
#include "graph/io.h"
#include "graph/stats.h"
#include "util/timer.h"

namespace {

using namespace prsim;

/// Minimal flag parser: --name value pairs after the subcommand.
class Flags {
 public:
  Flags(int argc, char** argv, int first) {
    for (int i = first; i + 1 < argc; i += 2) {
      if (std::strncmp(argv[i], "--", 2) != 0) continue;
      values_.emplace_back(argv[i] + 2, argv[i + 1]);
    }
    // Boolean flags (no value) are detected separately.
    for (int i = first; i < argc; ++i) {
      if (std::strcmp(argv[i], "--undirected") == 0) undirected_ = true;
    }
  }

  std::string Get(const std::string& name, const std::string& fallback) const {
    for (const auto& [k, v] : values_) {
      if (k == name) return v;
    }
    return fallback;
  }
  double GetDouble(const std::string& name, double fallback) const {
    const std::string raw = Get(name, "");
    return raw.empty() ? fallback : std::strtod(raw.c_str(), nullptr);
  }
  uint64_t GetInt(const std::string& name, uint64_t fallback) const {
    const std::string raw = Get(name, "");
    return raw.empty() ? fallback : std::strtoull(raw.c_str(), nullptr, 10);
  }
  bool undirected() const { return undirected_; }

 private:
  std::vector<std::pair<std::string, std::string>> values_;
  bool undirected_ = false;
};

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

Result<Graph> LoadAnyGraph(const std::string& path) {
  if (EndsWith(path, ".bin")) return GraphIO::LoadBinary(path);
  return LoadGraphText(path);
}

int CmdStats(const Flags& flags) {
  const std::string path = flags.Get("graph", "");
  if (path.empty()) {
    std::fprintf(stderr, "stats: --graph is required\n");
    return 2;
  }
  auto graph = LoadAnyGraph(path);
  if (!graph.ok()) {
    std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
    return 1;
  }
  const GraphSummary s = Summarize(graph.ValueOrDie());
  std::printf("n            %u\n", s.n);
  std::printf("m            %llu\n", static_cast<unsigned long long>(s.m));
  std::printf("avg degree   %.2f\n", s.avg_degree);
  std::printf("max out/in   %u / %u\n", s.max_out_degree, s.max_in_degree);
  std::printf("dangling     %u\n", s.dangling_nodes);
  std::printf("gamma out/in %.2f / %.2f (cumulative power-law fits)\n",
              s.out_gamma, s.in_gamma);
  return 0;
}

int CmdIndex(const Flags& flags) {
  const std::string graph_path = flags.Get("graph", "");
  const std::string out_path = flags.Get("out", "");
  if (graph_path.empty() || out_path.empty()) {
    std::fprintf(stderr, "index: --graph and --out are required\n");
    return 2;
  }
  auto graph = LoadAnyGraph(graph_path);
  if (!graph.ok()) {
    std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
    return 1;
  }
  PRSimIndexOptions options;
  options.c = flags.GetDouble("c", 0.6);
  options.eps = flags.GetDouble("eps", 0.1);
  options.j0 = static_cast<uint32_t>(flags.GetInt("j0", 0));
  WallTimer timer;
  auto index = PRSimIndex::Build(graph.ValueOrDie(), options);
  if (!index.ok()) {
    std::fprintf(stderr, "%s\n", index.status().ToString().c_str());
    return 1;
  }
  Status st =
      PRSimIndexIO::Save(index.ValueOrDie(), graph.ValueOrDie(), out_path);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("built index: %u hubs, %llu tuples, %.2f MB in %.2fs -> %s\n",
              index.ValueOrDie().hub_count(),
              static_cast<unsigned long long>(
                  index.ValueOrDie().total_tuples()),
              index.ValueOrDie().IndexBytes() / 1e6, timer.Seconds(),
              out_path.c_str());
  return 0;
}

int CmdQuery(const Flags& flags) {
  const std::string graph_path = flags.Get("graph", "");
  if (graph_path.empty()) {
    std::fprintf(stderr, "query: --graph is required\n");
    return 2;
  }
  auto graph_result = LoadAnyGraph(graph_path);
  if (!graph_result.ok()) {
    std::fprintf(stderr, "%s\n", graph_result.status().ToString().c_str());
    return 1;
  }
  Graph graph = std::move(graph_result).ValueOrDie();

  PRSimOptions options;
  options.c = flags.GetDouble("c", 0.6);
  options.eps = flags.GetDouble("eps", 0.1);
  options.seed = flags.GetInt("seed", 42);
  PRSim prsim(graph, options);

  const std::string index_path = flags.Get("index", "");
  WallTimer prep_timer;
  if (!index_path.empty()) {
    auto index = PRSimIndexIO::Load(graph, index_path);
    if (!index.ok()) {
      std::fprintf(stderr, "%s\n", index.status().ToString().c_str());
      return 1;
    }
    prsim.AdoptIndex(std::move(index).ValueOrDie());
    std::printf("loaded index from %s in %.2fs\n", index_path.c_str(),
                prep_timer.Seconds());
  } else {
    prsim.Preprocess().Abort();
    std::printf("preprocessed in %.2fs (no --index given)\n",
                prep_timer.Seconds());
  }

  const auto source = static_cast<NodeId>(flags.GetInt("source", 0));
  if (source >= graph.n()) {
    std::fprintf(stderr, "query: --source %u out of range (n = %u)\n", source,
                 graph.n());
    return 2;
  }
  const auto k = static_cast<uint32_t>(flags.GetInt("k", 20));
  WallTimer query_timer;
  ScoreList scores = prsim.Query(source);
  std::printf("query answered in %.4fs (%zu non-zero scores)\n",
              query_timer.Seconds(), scores.size());
  for (const auto& [v, s] : TopK(scores, k, source)) {
    std::printf("%-10u %.6f\n", v, s);
  }
  return 0;
}

int CmdGenerate(const Flags& flags) {
  const std::string out_path = flags.Get("out", "");
  if (out_path.empty()) {
    std::fprintf(stderr, "generate: --out is required\n");
    return 2;
  }
  const std::string model = flags.Get("model", "chunglu");
  Result<Graph> graph = Status::InvalidArgument("unknown model: " + model);
  if (model == "chunglu") {
    ChungLuOptions options;
    options.n = static_cast<NodeId>(flags.GetInt("n", 100000));
    options.avg_degree = flags.GetDouble("degree", 10);
    options.gamma_out = flags.GetDouble("gamma", 2.0);
    options.gamma_in = flags.GetDouble("gamma_in", -1);
    options.undirected = flags.undirected();
    options.seed = flags.GetInt("seed", 1);
    graph = GenerateChungLu(options);
  } else if (model == "er") {
    ErdosRenyiOptions options;
    options.n = static_cast<NodeId>(flags.GetInt("n", 100000));
    options.avg_degree = flags.GetDouble("degree", 10);
    options.undirected = flags.undirected();
    options.seed = flags.GetInt("seed", 1);
    graph = GenerateErdosRenyi(options);
  } else if (model == "ba") {
    BarabasiAlbertOptions options;
    options.n = static_cast<NodeId>(flags.GetInt("n", 100000));
    options.edges_per_node = static_cast<uint32_t>(flags.GetInt("degree", 5));
    options.seed = flags.GetInt("seed", 1);
    graph = GenerateBarabasiAlbert(options);
  }
  if (!graph.ok()) {
    std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
    return 1;
  }
  Status st = EndsWith(out_path, ".bin")
                  ? GraphIO::SaveBinary(graph.ValueOrDie(), out_path)
                  : SaveEdgeListText(graph.ValueOrDie(), out_path);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s: n=%u m=%llu\n", out_path.c_str(),
              graph.ValueOrDie().n(),
              static_cast<unsigned long long>(graph.ValueOrDie().m()));
  return 0;
}

void Usage() {
  std::fprintf(stderr,
               "usage: prsim_cli <stats|index|query|generate> [--flags]\n"
               "  see the header comment of tools/prsim_cli.cc\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    Usage();
    return 2;
  }
  const std::string command = argv[1];
  const Flags flags(argc, argv, 2);
  if (command == "stats") return CmdStats(flags);
  if (command == "index") return CmdIndex(flags);
  if (command == "query") return CmdQuery(flags);
  if (command == "generate") return CmdGenerate(flags);
  Usage();
  return 2;
}
