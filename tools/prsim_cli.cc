// prsim_cli — command-line front end for the library.
//
// Subcommands:
//   prsim_cli stats     --graph g.txt
//       Prints n, m, degree extremes and fitted power-law exponents.
//   prsim_cli index     --graph g.txt --out g.idx [--eps 0.1] [--c 0.6]
//                       [--j0 N]
//       Builds the PRSim hub index and serializes it.
//   prsim_cli query     --graph g.txt --source U [--index g.idx]
//                       [--eps 0.1] [--c 0.6] [--k 20] [--seed S]
//       Answers a single-source query (loading the index if given,
//       otherwise preprocessing in-process) and prints the top-k.
//   prsim_cli generate  --out g.txt [--model chunglu|er|ba] [--n N]
//                       [--degree D] [--gamma G] [--seed S] [--undirected]
//       Writes a synthetic edge list.
//
// Graphs are SNAP-style edge-list text ('#' comments) or the binary format
// produced by this tool when the path ends in ".bin".

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <initializer_list>
#include <string>
#include <utility>
#include <vector>

#include "core/index_io.h"
#include "core/prsim.h"
#include "eval/datasets.h"
#include "gen/barabasi_albert.h"
#include "gen/chung_lu.h"
#include "gen/erdos_renyi.h"
#include "graph/io.h"
#include "graph/stats.h"
#include "util/timer.h"

namespace {

using namespace prsim;

/// Minimal flag parser: --name value pairs after the subcommand, plus
/// boolean flags that take no value. Each subcommand declares which flags
/// it accepts; anything else (unknown flags, bare positional arguments, a
/// valued flag at the end of the line with no value) is a parse error
/// surfaced through ok()/error() rather than being silently dropped.
class Flags {
 public:
  Flags(int argc, char** argv, int first,
        std::initializer_list<const char*> valued,
        std::initializer_list<const char*> booleans = {}) {
    for (int i = first; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg.compare(0, 2, "--") != 0) {
        error_ = "unexpected argument: " + arg;
        return;
      }
      const std::string name = arg.substr(2);
      if (Contains(booleans, name)) {
        if (!Has(name)) booleans_.push_back(name);
        continue;
      }
      if (!Contains(valued, name)) {
        error_ = "unknown flag: " + arg;
        return;
      }
      if (Find(name) != nullptr) {
        error_ = "duplicate flag: " + arg;
        return;
      }
      if (i + 1 >= argc || std::strncmp(argv[i + 1], "--", 2) == 0) {
        error_ = arg + " expects a value";
        return;
      }
      values_.emplace_back(name, argv[++i]);
    }
  }

  bool ok() const { return error_.empty(); }
  const std::string& error() const { return error_; }

  std::string Get(const std::string& name, const std::string& fallback) const {
    const std::string* raw = Find(name);
    return raw == nullptr ? fallback : *raw;
  }
  double GetDouble(const std::string& name, double fallback) const {
    const std::string* raw = Find(name);
    if (raw == nullptr) return fallback;
    char* end = nullptr;
    const double value = std::strtod(raw->c_str(), &end);
    if (end == raw->c_str() || *end != '\0') InvalidValue(name, *raw);
    return value;
  }
  uint64_t GetInt(const std::string& name, uint64_t fallback) const {
    const std::string* raw = Find(name);
    if (raw == nullptr) return fallback;
    char* end = nullptr;
    errno = 0;
    const uint64_t value = std::strtoull(raw->c_str(), &end, 10);
    if (raw->empty() || (*raw)[0] == '-' || end == raw->c_str() ||
        *end != '\0' || errno == ERANGE) {
      InvalidValue(name, *raw);
    }
    return value;
  }
  /// GetInt with a range check against the 32-bit node/count call sites so
  /// oversized values error instead of silently truncating in a cast.
  uint32_t GetUint32(const std::string& name, uint32_t fallback) const {
    const uint64_t value = GetInt(name, fallback);
    if (value > UINT32_MAX) InvalidValue(name, Get(name, ""));
    return static_cast<uint32_t>(value);
  }
  bool Has(const std::string& name) const {
    for (const auto& b : booleans_) {
      if (b == name) return true;
    }
    return false;
  }
  bool undirected() const { return Has("undirected"); }

 private:
  const std::string* Find(const std::string& name) const {
    for (const auto& [k, v] : values_) {
      if (k == name) return &v;
    }
    return nullptr;
  }

  static bool Contains(std::initializer_list<const char*> names,
                       const std::string& name) {
    for (const char* candidate : names) {
      if (name == candidate) return true;
    }
    return false;
  }

  [[noreturn]] static void InvalidValue(const std::string& name,
                                        const std::string& raw) {
    std::fprintf(stderr, "invalid value for --%s: '%s'\n", name.c_str(),
                 raw.c_str());
    std::exit(2);
  }

  std::vector<std::pair<std::string, std::string>> values_;
  std::vector<std::string> booleans_;
  std::string error_;
};

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

Result<Graph> LoadAnyGraph(const std::string& path) {
  if (EndsWith(path, ".bin")) return GraphIO::LoadBinary(path);
  return LoadGraphText(path);
}

int CmdStats(const Flags& flags) {
  const std::string path = flags.Get("graph", "");
  if (path.empty()) {
    std::fprintf(stderr, "stats: --graph is required\n");
    return 2;
  }
  auto graph = LoadAnyGraph(path);
  if (!graph.ok()) {
    std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
    return 1;
  }
  const GraphSummary s = Summarize(graph.ValueOrDie());
  std::printf("n            %u\n", s.n);
  std::printf("m            %llu\n", static_cast<unsigned long long>(s.m));
  std::printf("avg degree   %.2f\n", s.avg_degree);
  std::printf("max out/in   %u / %u\n", s.max_out_degree, s.max_in_degree);
  std::printf("dangling     %u\n", s.dangling_nodes);
  std::printf("gamma out/in %.2f / %.2f (cumulative power-law fits)\n",
              s.out_gamma, s.in_gamma);
  return 0;
}

int CmdIndex(const Flags& flags) {
  const std::string graph_path = flags.Get("graph", "");
  const std::string out_path = flags.Get("out", "");
  if (graph_path.empty() || out_path.empty()) {
    std::fprintf(stderr, "index: --graph and --out are required\n");
    return 2;
  }
  auto graph = LoadAnyGraph(graph_path);
  if (!graph.ok()) {
    std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
    return 1;
  }
  PRSimIndexOptions options;
  options.c = flags.GetDouble("c", 0.6);
  options.eps = flags.GetDouble("eps", 0.1);
  options.j0 = flags.GetUint32("j0", 0);
  WallTimer timer;
  auto index = PRSimIndex::Build(graph.ValueOrDie(), options);
  if (!index.ok()) {
    std::fprintf(stderr, "%s\n", index.status().ToString().c_str());
    return 1;
  }
  Status st =
      PRSimIndexIO::Save(index.ValueOrDie(), graph.ValueOrDie(), out_path);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("built index: %u hubs, %llu tuples, %.2f MB in %.2fs -> %s\n",
              index.ValueOrDie().hub_count(),
              static_cast<unsigned long long>(
                  index.ValueOrDie().total_tuples()),
              index.ValueOrDie().IndexBytes() / 1e6, timer.Seconds(),
              out_path.c_str());
  return 0;
}

int CmdQuery(const Flags& flags) {
  const std::string graph_path = flags.Get("graph", "");
  if (graph_path.empty()) {
    std::fprintf(stderr, "query: --graph is required\n");
    return 2;
  }
  auto graph_result = LoadAnyGraph(graph_path);
  if (!graph_result.ok()) {
    std::fprintf(stderr, "%s\n", graph_result.status().ToString().c_str());
    return 1;
  }
  Graph graph = std::move(graph_result).ValueOrDie();

  // Validate the cheap flags before index loading / preprocessing so a bad
  // --source or --k fails fast instead of after minutes of preprocessing.
  const auto source = static_cast<NodeId>(flags.GetUint32("source", 0));
  if (source >= graph.n()) {
    std::fprintf(stderr, "query: --source %u out of range (n = %u)\n", source,
                 graph.n());
    return 2;
  }
  const uint32_t k = flags.GetUint32("k", 20);

  PRSimOptions options;
  options.c = flags.GetDouble("c", 0.6);
  options.eps = flags.GetDouble("eps", 0.1);
  options.seed = flags.GetInt("seed", 42);
  PRSim prsim(graph, options);

  const std::string index_path = flags.Get("index", "");
  WallTimer prep_timer;
  if (!index_path.empty()) {
    auto index = PRSimIndexIO::Load(graph, index_path);
    if (!index.ok()) {
      std::fprintf(stderr, "%s\n", index.status().ToString().c_str());
      return 1;
    }
    prsim.AdoptIndex(std::move(index).ValueOrDie());
    std::printf("loaded index from %s in %.2fs\n", index_path.c_str(),
                prep_timer.Seconds());
  } else {
    prsim.Preprocess().Abort();
    std::printf("preprocessed in %.2fs (no --index given)\n",
                prep_timer.Seconds());
  }

  WallTimer query_timer;
  ScoreList scores = prsim.Query(source);
  std::printf("query answered in %.4fs (%zu non-zero scores)\n",
              query_timer.Seconds(), scores.size());
  for (const auto& [v, s] : TopK(scores, k, source)) {
    std::printf("%-10u %.6f\n", v, s);
  }
  return 0;
}

int CmdGenerate(const Flags& flags) {
  const std::string out_path = flags.Get("out", "");
  if (out_path.empty()) {
    std::fprintf(stderr, "generate: --out is required\n");
    return 2;
  }
  const std::string model = flags.Get("model", "chunglu");
  Result<Graph> graph = Status::InvalidArgument("unknown model: " + model);
  if (model == "chunglu") {
    ChungLuOptions options;
    options.n = flags.GetUint32("n", 100000);
    options.avg_degree = flags.GetDouble("degree", 10);
    options.gamma_out = flags.GetDouble("gamma", 2.0);
    options.gamma_in = flags.GetDouble("gamma_in", -1);
    options.undirected = flags.undirected();
    options.seed = flags.GetInt("seed", 1);
    graph = GenerateChungLu(options);
  } else if (model == "er") {
    ErdosRenyiOptions options;
    options.n = flags.GetUint32("n", 100000);
    options.avg_degree = flags.GetDouble("degree", 10);
    options.undirected = flags.undirected();
    options.seed = flags.GetInt("seed", 1);
    graph = GenerateErdosRenyi(options);
  } else if (model == "ba") {
    BarabasiAlbertOptions options;
    options.n = flags.GetUint32("n", 100000);
    options.edges_per_node = flags.GetUint32("degree", 5);
    options.seed = flags.GetInt("seed", 1);
    graph = GenerateBarabasiAlbert(options);
  }
  if (!graph.ok()) {
    std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
    return 1;
  }
  Status st = EndsWith(out_path, ".bin")
                  ? GraphIO::SaveBinary(graph.ValueOrDie(), out_path)
                  : SaveEdgeListText(graph.ValueOrDie(), out_path);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s: n=%u m=%llu\n", out_path.c_str(),
              graph.ValueOrDie().n(),
              static_cast<unsigned long long>(graph.ValueOrDie().m()));
  return 0;
}

void Usage() {
  std::fprintf(stderr,
               "usage: prsim_cli <stats|index|query|generate> [--flags]\n"
               "  see the header comment of tools/prsim_cli.cc\n");
}

/// Parses the flags a subcommand accepts and runs it, or reports the parse
/// error with usage and exits 2.
int Dispatch(int argc, char** argv, std::initializer_list<const char*> valued,
             std::initializer_list<const char*> booleans,
             int (*cmd)(const Flags&)) {
  const Flags flags(argc, argv, 2, valued, booleans);
  if (!flags.ok()) {
    std::fprintf(stderr, "%s\n", flags.error().c_str());
    Usage();
    return 2;
  }
  return cmd(flags);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    Usage();
    return 2;
  }
  const std::string command = argv[1];
  if (command == "stats") {
    return Dispatch(argc, argv, {"graph"}, {}, CmdStats);
  }
  if (command == "index") {
    return Dispatch(argc, argv, {"graph", "out", "eps", "c", "j0"}, {},
                    CmdIndex);
  }
  if (command == "query") {
    return Dispatch(argc, argv,
                    {"graph", "index", "source", "eps", "c", "k", "seed"}, {},
                    CmdQuery);
  }
  if (command == "generate") {
    return Dispatch(argc, argv,
                    {"out", "model", "n", "degree", "gamma", "gamma_in",
                     "seed"},
                    {"undirected"}, CmdGenerate);
  }
  Usage();
  return 2;
}
