// prsim_cli — command-line front end for the library.
//
// Subcommands:
//   prsim_cli stats     --graph g.txt
//       Prints n, m, degree extremes and fitted power-law exponents.
//   prsim_cli algos
//       Lists every engine in the registry with its metadata and the
//       config keys it accepts via --params.
//   prsim_cli index     --graph g.txt --out g.idx [--algo prsim]
//                       [--params k=v,k=v] [--eps 0.1] [--c 0.6] [--j0 N]
//                       [--seed S] [--threads T]
//       Builds the index of any persistent engine (prsim, sling, reads,
//       tsf) and serializes it as a fingerprinted artifact.
//   prsim_cli shard-build --graph g.txt --out-dir DIR [--shards N]
//                       [--strategy hash|range] [--algo prsim]
//                       [--params k=v,k=v] [--eps 0.1] [--c 0.6] [--j0 N]
//                       [--seed S] [--threads T]
//       Builds a self-contained shard bundle: graph artifact, engine index
//       (for persistent engines), and a manifest recording the engine,
//       its params, and the deterministic partition spec. `query
//       --manifest` and `serve --manifest` reconstruct the whole serving
//       topology from the manifest alone.
//   prsim_cli query     --graph g.txt --source U [--algo prsim]
//                       [--params k=v,k=v] [--index g.idx] [--eps 0.1]
//                       [--c 0.6] [--k 20] [--seed S] [--j0 N] [--alpha A]
//                       [--rounds R] [--threads T] [--paper-constants]
//                       [--format text|tsv|json] [--sources-file f.txt]
//       Alternatively: prsim_cli query --manifest DIR/manifest.bin
//                       --source U [--k 20] [--threads T] [--format ...]
//                       [--sources-file f.txt]
//       routes the query through the shard bundle's router; --manifest is
//       mutually exclusive with --graph/--index/--algo/--params (the
//       manifest already records all of them) and answers bit-identically
//       to the unsharded command at any shard count.
//       Answers a single-source query with any registry engine (loading a
//       saved index if given — the artifact must match the graph and the
//       index-shaping options — otherwise preprocessing in-process) and
//       prints the top-k. Engine-specific knobs go through --params; the
//       dedicated flags override keys of the same name. --format tsv/json
//       emit machine-readable scores, QueryCost counters, and timings on
//       stdout (progress goes to stderr). --threads T parallelizes the
//       single query itself (PRSim's sample grid runs as static chunks on
//       the shared pool; scores are bit-identical for every T) as well as
//       index construction; it must be >= 1 (exit 2 otherwise), and when
//       omitted the default is PRSIM_THREADS if set, else hardware
//       concurrency. --sources-file switches to batch mode: one node id
//       per line ('#' comments allowed), answered through the shared
//       thread pool with p50/p95/p99 latency reported; invalid lines get a
//       per-line error and exit code 3 without aborting the rest of the
//       batch.
//   prsim_cli serve     --graph g.txt (--stdin | --listen PORT)
//                       [--algo prsim] [--index g.idx] [--params k=v,k=v]
//                       [--k 20] [--threads T] [--queue N] [--reject]
//                       [--degraded] [--max-connections N]
//                       [--idle-timeout-ms MS] [--io-timeout-ms MS]
//                       [--faults SPEC] [--fault-seed S]
//       Alternatively: prsim_cli serve --manifest DIR/manifest.bin ...
//       serves the shard bundle: one QueryService per shard, requests
//       routed by source ownership, global positional seeds — the sharded
//       topology answers every request stream bit-identically to the
//       unsharded one. Same mutual exclusion as `query --manifest`.
//       Long-lived query service behind one of two transports (exactly one
//       must be given):
//         --stdin: reads newline-delimited requests "<source> [k]",
//           pipelines them through the service's bounded queue (--queue,
//           --reject), and prints "result <source> <node>:<score>,..."
//           lines in submission order on stdout. Per-line errors go to
//           stderr without stopping the loop; exit 3 if any line failed.
//         --listen PORT: TCP front end on 127.0.0.1:PORT (0 picks an
//           ephemeral port; the chosen one is announced on stderr as
//           "listening on 127.0.0.1:<port>"). Each connection speaks either
//           the same text line protocol or the length-prefixed binary
//           framing (net/frame.h; opened by the "PRSB" magic) and gets its
//           responses in submission order. --max-connections caps
//           concurrent connections.
//       --threads sizes the service's worker pool (>= 1, exit 2 on 0;
//       default PRSIM_THREADS, else hardware concurrency); each worker
//       answers with its own engine clone, and the intra-query sample grid
//       runs serially inside those workers, so results never depend on the
//       thread count. SIGINT/SIGTERM trigger a graceful shutdown on both
//       transports: stop accepting, drain in-flight requests, flush
//       responses, exit 0. Every serve exit prints final ServiceStats as
//       one JSON line on stderr ({"event":"serve_stats",...}).
//       Robustness knobs: text requests may carry "deadline_ms=N" (binary
//       frames a v2 deadline field); expired requests resolve with
//       kDeadlineExceeded and never shift the positional seeds of the
//       surviving stream. --degraded sheds queue-full requests immediately
//       while cache hits keep answering. --idle-timeout-ms reaps
//       connections that stop talking; --io-timeout-ms bounds each
//       response write. --faults "name=num/den[:stall_ms],..." (or
//       PRSIM_FAULTS; seed via --fault-seed / PRSIM_FAULT_SEED) arms the
//       deterministic fault-injection harness (util/fault_injection.h) and
//       prints a {"event":"fault_stats",...} line at exit.
//   prsim_cli client    --port P [--source U] [--k 20] [--fresh]
//                       [--algo NAME] [--format text|tsv]
//                       [--deadline-ms N] [--timeout-ms MS] [--retries R]
//       One-shot TCP client for the binary framing: sends a single query
//       to a `serve --listen` process on 127.0.0.1:P and prints the
//       response; --format tsv prints the same "score\t<node>\t<%.17g>"
//       rows as `query --format tsv`, and --fresh asks for fresh-engine
//       seeding, so the output diffs bit-for-bit against the offline query
//       path (the CI end-to-end smoke). --deadline-ms attaches a server-
//       side deadline budget; --timeout-ms bounds the connect and each
//       response wait client-side; --retries R re-attempts with jittered
//       exponential backoff, but only when the server provably did not
//       start answering (connect failure, timeout/clean EOF before the
//       first response frame) — never after a partial reply.
//   prsim_cli generate  --out g.txt [--model chunglu|er|ba] [--n N]
//                       [--degree D] [--gamma G] [--seed S] [--undirected]
//       Writes a synthetic edge list.
//
// Graphs are SNAP-style edge-list text ('#' comments) or the binary format
// produced by this tool when the path ends in ".bin".

#include <poll.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <initializer_list>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/batch_query.h"
#include "core/engine_config.h"
#include "core/engine_registry.h"
#include "core/prsim.h"
#include "core/query_service.h"
#include "core/shard_manifest.h"
#include "core/shard_router.h"
#include "graph/partition.h"
#include "eval/datasets.h"
#include "gen/barabasi_albert.h"
#include "gen/chung_lu.h"
#include "gen/erdos_renyi.h"
#include "graph/io.h"
#include "graph/stats.h"
#include "net/frame.h"
#include "net/serve_loop.h"
#include "net/tcp_server.h"
#include "util/fault_injection.h"
#include "util/parse.h"
#include "util/rng.h"
#include "util/socket.h"
#include "util/timer.h"

namespace {

using namespace prsim;

/// Minimal flag parser: --name value pairs after the subcommand, plus
/// boolean flags that take no value. Each subcommand declares which flags
/// it accepts; anything else (unknown flags, bare positional arguments, a
/// valued flag at the end of the line with no value) is a parse error
/// surfaced through ok()/error() rather than being silently dropped.
class Flags {
 public:
  Flags(int argc, char** argv, int first,
        std::initializer_list<const char*> valued,
        std::initializer_list<const char*> booleans = {}) {
    for (int i = first; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg.compare(0, 2, "--") != 0) {
        error_ = "unexpected argument: " + arg;
        return;
      }
      const std::string name = arg.substr(2);
      if (Contains(booleans, name)) {
        if (!Has(name)) booleans_.push_back(name);
        continue;
      }
      if (!Contains(valued, name)) {
        error_ = "unknown flag: " + arg;
        return;
      }
      if (Find(name) != nullptr) {
        error_ = "duplicate flag: " + arg;
        return;
      }
      if (i + 1 >= argc || std::strncmp(argv[i + 1], "--", 2) == 0) {
        error_ = arg + " expects a value";
        return;
      }
      values_.emplace_back(name, argv[++i]);
    }
  }

  bool ok() const { return error_.empty(); }
  const std::string& error() const { return error_; }

  std::string Get(const std::string& name, const std::string& fallback) const {
    const std::string* raw = Find(name);
    return raw == nullptr ? fallback : *raw;
  }
  double GetDouble(const std::string& name, double fallback) const {
    const std::string* raw = Find(name);
    if (raw == nullptr) return fallback;
    char* end = nullptr;
    const double value = std::strtod(raw->c_str(), &end);
    if (end == raw->c_str() || *end != '\0') InvalidValue(name, *raw);
    return value;
  }
  uint64_t GetInt(const std::string& name, uint64_t fallback) const {
    const std::string* raw = Find(name);
    if (raw == nullptr) return fallback;
    uint64_t value = 0;
    if (!ParseUint64(*raw, &value)) InvalidValue(name, *raw);
    return value;
  }
  /// GetInt with a range check against the 32-bit node/count call sites so
  /// oversized values error instead of silently truncating in a cast.
  uint32_t GetUint32(const std::string& name, uint32_t fallback) const {
    const uint64_t value = GetInt(name, fallback);
    if (value > UINT32_MAX) InvalidValue(name, Get(name, ""));
    return static_cast<uint32_t>(value);
  }
  bool Has(const std::string& name) const {
    for (const auto& b : booleans_) {
      if (b == name) return true;
    }
    return false;
  }
  /// True when a valued flag was given, even with an empty value (so callers
  /// can route "" into validation instead of mistaking it for "absent").
  bool HasValue(const std::string& name) const { return Find(name) != nullptr; }
  bool undirected() const { return Has("undirected"); }

 private:
  const std::string* Find(const std::string& name) const {
    for (const auto& [k, v] : values_) {
      if (k == name) return &v;
    }
    return nullptr;
  }

  static bool Contains(std::initializer_list<const char*> names,
                       const std::string& name) {
    for (const char* candidate : names) {
      if (name == candidate) return true;
    }
    return false;
  }

  [[noreturn]] static void InvalidValue(const std::string& name,
                                        const std::string& raw) {
    std::fprintf(stderr, "invalid value for --%s: '%s'\n", name.c_str(),
                 raw.c_str());
    std::exit(2);
  }

  std::vector<std::pair<std::string, std::string>> values_;
  std::vector<std::string> booleans_;
  std::string error_;
};

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

Result<Graph> LoadAnyGraph(const std::string& path) {
  if (EndsWith(path, ".bin")) return GraphIO::LoadBinary(path);
  return LoadGraphText(path);
}

int CmdStats(const Flags& flags) {
  const std::string path = flags.Get("graph", "");
  if (path.empty()) {
    std::fprintf(stderr, "stats: --graph is required\n");
    return 2;
  }
  auto graph = LoadAnyGraph(path);
  if (!graph.ok()) {
    std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
    return 1;
  }
  const GraphSummary s = Summarize(graph.ValueOrDie());
  std::printf("n            %u\n", s.n);
  std::printf("m            %llu\n", static_cast<unsigned long long>(s.m));
  std::printf("avg degree   %.2f\n", s.avg_degree);
  std::printf("max out/in   %u / %u\n", s.max_out_degree, s.max_in_degree);
  std::printf("dangling     %u\n", s.dangling_nodes);
  std::printf("gamma out/in %.2f / %.2f (cumulative power-law fits)\n",
              s.out_gamma, s.in_gamma);
  return 0;
}

/// Builds an EngineConfig from --params plus the dedicated engine flags
/// (which override keys of the same name). Returns exit code 0 on success,
/// 2 on a malformed --params string or an explicit --threads 0.
int BuildEngineConfig(const Flags& flags, EngineConfig* out) {
  // "0 threads" has no meaning on any path (engines treat an *absent*
  // thread count as "use the default"); an explicit --threads 0 is a typo'd
  // request and is rejected like every other out-of-range flag value.
  if (flags.HasValue("threads") && flags.GetInt("threads", 1) == 0) {
    std::fprintf(stderr,
                 "--threads must be >= 1 (omit the flag for the default: "
                 "PRSIM_THREADS when set, else hardware concurrency)\n");
    return 2;
  }
  auto parsed = EngineConfig::Parse(flags.Get("params", ""));
  if (!parsed.ok()) {
    std::fprintf(stderr, "--params: %s\n",
                 parsed.status().ToString().c_str());
    return 2;
  }
  *out = parsed.MoveValueUnsafe();
  // Dedicated flags share their config key's name (--paper-constants is the
  // one spelling difference); values stay raw strings so the engine factory
  // is the single place numbers are parsed and range-checked.
  for (const char* key :
       {"c", "eps", "seed", "j0", "alpha", "rounds", "threads"}) {
    if (flags.HasValue(key)) out->SetOrReplace(key, flags.Get(key, ""));
  }
  if (flags.Has("paper-constants")) {
    out->SetOrReplace("paper_constants", "true");
  }
  return 0;
}

int CmdAlgos(const Flags&) {
  const EngineRegistry& registry = EngineRegistry::Global();
  std::printf("%-12s %-6s %-5s %-8s %-28s %s\n", "name", "index", "pair",
              "persist", "reference", "config keys");
  for (const std::string& name : registry.Names()) {
    const EngineInfo* info = registry.Find(name);
    std::printf("%-12s %-6s %-5s %-8s %-28s %s\n", info->name.c_str(),
                info->index_based ? "yes" : "no",
                info->supports_pair_query ? "yes" : "no",
                info->has_persistent_index ? "yes" : "no",
                info->paper_ref.c_str(), info->config_keys.c_str());
  }
  std::printf(
      "\nusage: prsim_cli query --graph g.txt --source U --algo <name> "
      "[--params k=v,k=v]\n");
  return 0;
}

int CmdIndex(const Flags& flags) {
  const std::string graph_path = flags.Get("graph", "");
  const std::string out_path = flags.Get("out", "");
  if (graph_path.empty() || out_path.empty()) {
    std::fprintf(stderr, "index: --graph and --out are required\n");
    return 2;
  }
  const std::string algo = flags.Get("algo", "prsim");
  const EngineInfo* info = EngineRegistry::Global().Find(algo);
  if (info == nullptr) {
    std::fprintf(stderr,
                 "index: unknown --algo '%s' (run `prsim_cli algos`)\n",
                 algo.c_str());
    return 2;
  }
  if (!info->has_persistent_index) {
    std::fprintf(stderr, "index: --algo %s has no persistent index\n",
                 info->name.c_str());
    return 2;
  }
  // Validate the engine config through the registry before touching the
  // graph file, so bad flag values fail fast with exit 2.
  EngineConfig config;
  if (const int rc = BuildEngineConfig(flags, &config); rc != 0) return rc;
  if (Status st = EngineRegistry::Global().Validate(info->name, config);
      !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 2;
  }
  auto graph = LoadAnyGraph(graph_path);
  if (!graph.ok()) {
    std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
    return 1;
  }
  auto engine = EngineRegistry::Global().Create(info->name,
                                                graph.ValueOrDie(), config);
  engine.status().Abort();  // config already validated above
  WallTimer timer;
  Status st = engine.ValueOrDie()->Preprocess();
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  st = engine.ValueOrDie()->SaveIndex(out_path);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("built index: algo=%s %.2f MB in %.2fs -> %s\n",
              engine.ValueOrDie()->name().c_str(),
              engine.ValueOrDie()->IndexBytes() / 1e6, timer.Seconds(),
              out_path.c_str());
  if (const auto* prsim =
          dynamic_cast<const PRSim*>(engine.ValueOrDie().get())) {
    std::printf("  %u hubs, %llu tuples\n", prsim->index().hub_count(),
                static_cast<unsigned long long>(
                    prsim->index().total_tuples()));
  }
  return 0;
}

int CmdShardBuild(const Flags& flags) {
  const std::string graph_path = flags.Get("graph", "");
  const std::string out_dir = flags.Get("out-dir", "");
  if (graph_path.empty() || out_dir.empty()) {
    std::fprintf(stderr, "shard-build: --graph and --out-dir are required\n");
    return 2;
  }
  const std::string algo = flags.Get("algo", "prsim");
  const EngineInfo* info = EngineRegistry::Global().Find(algo);
  if (info == nullptr) {
    std::fprintf(stderr,
                 "shard-build: unknown --algo '%s' (run `prsim_cli algos`)\n",
                 algo.c_str());
    return 2;
  }
  PartitionSpec spec;
  spec.shards = flags.GetUint32("shards", 1);
  auto strategy = ParsePartitionStrategy(flags.Get("strategy", "hash"));
  if (!strategy.ok()) {
    std::fprintf(stderr, "shard-build: %s\n",
                 strategy.status().ToString().c_str());
    return 2;
  }
  spec.strategy = strategy.ValueOrDie();
  if (Status st = ValidatePartitionSpec(spec); !st.ok()) {
    std::fprintf(stderr, "shard-build: %s\n", st.ToString().c_str());
    return 2;
  }
  EngineConfig config;
  if (const int rc = BuildEngineConfig(flags, &config); rc != 0) return rc;
  if (Status st = EngineRegistry::Global().Validate(info->name, config);
      !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 2;
  }
  auto graph = LoadAnyGraph(graph_path);
  if (!graph.ok()) {
    std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
    return 1;
  }
  WallTimer timer;
  auto manifest = BuildShardBundle(graph.ValueOrDie(), info->name, config,
                                   spec, out_dir);
  if (!manifest.ok()) {
    std::fprintf(stderr, "%s\n", manifest.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "built shard bundle: algo=%s shards=%u strategy=%s in %.2fs -> %s\n",
      info->name.c_str(), spec.shards, PartitionStrategyName(spec.strategy),
      timer.Seconds(), manifest.ValueOrDie().c_str());
  return 0;
}

/// Output format of `query`: human text (default) or machine-readable
/// tsv/json carrying the scores, QueryCost counters, and timings.
enum class QueryFormat { kText, kTsv, kJson };

/// The QueryCost counters as (name, value) pairs — the single field list
/// every output format renders, so a new counter cannot be dropped from
/// one format silently.
std::vector<std::pair<const char*, unsigned long long>> CostFields(
    const QueryCost& cost) {
  return {{"walks", cost.walks},
          {"meeting_tests", cost.meeting_tests},
          {"backward_walks", cost.backward_walks},
          {"backward_increments", cost.backward_increments},
          {"index_tuples_read", cost.index_tuples_read}};
}

void PrintQueryTsv(const std::string& algo, const QueryCost& cost,
                   NodeId source, uint32_t k, double preprocess_seconds,
                   double query_seconds, size_t nonzero,
                   const ScoreList& topk) {
  std::printf("meta\talgo\t%s\n", algo.c_str());
  std::printf("meta\tsource\t%u\n", source);
  std::printf("meta\tk\t%u\n", k);
  std::printf("meta\tpreprocess_s\t%.6f\n", preprocess_seconds);
  std::printf("meta\tquery_s\t%.6f\n", query_seconds);
  std::printf("meta\tnonzero_scores\t%zu\n", nonzero);
  for (const auto& [name, value] : CostFields(cost)) {
    std::printf("meta\t%s\t%llu\n", name, value);
  }
  for (const auto& [v, s] : topk) {
    std::printf("score\t%u\t%.17g\n", v, s);
  }
}

void PrintQueryJson(const std::string& algo, const QueryCost& cost,
                    NodeId source, uint32_t k, double preprocess_seconds,
                    double query_seconds, size_t nonzero,
                    const ScoreList& topk) {
  std::printf("{\"algo\":\"%s\",\"source\":%u,\"k\":%u,", algo.c_str(),
              source, k);
  std::printf("\"preprocess_seconds\":%.6f,\"query_seconds\":%.6f,",
              preprocess_seconds, query_seconds);
  std::printf("\"nonzero_scores\":%zu,", nonzero);
  std::printf("\"cost\":{");
  bool first = true;
  for (const auto& [name, value] : CostFields(cost)) {
    std::printf("%s\"%s\":%llu", first ? "" : ",", name, value);
    first = false;
  }
  std::printf("},\"scores\":[");
  for (size_t i = 0; i < topk.size(); ++i) {
    std::printf("%s[%u,%.17g]", i == 0 ? "" : ",", topk[i].first,
                topk[i].second);
  }
  std::printf("]}\n");
}

/// Parses a node id token, requiring id < n. Returns false (with a message
/// in *error) on malformed input or out-of-range ids.
bool ParseNodeId(const std::string& token, NodeId n, NodeId* id,
                 std::string* error) {
  uint64_t value = 0;
  if (!ParseUint64(token, &value) || value >= n) {
    *error = "invalid node id '" + token + "' (n = " + std::to_string(n) + ")";
    return false;
  }
  *id = static_cast<NodeId>(value);
  return true;
}

/// Reads a sources file (one node id per line, '#' comments) into
/// *sources, counting malformed/out-of-range lines in *invalid (each
/// reported on stderr). Returns the batch-mode exit code: 0 to proceed, 1
/// on unreadable file or no valid sources (3 if invalid lines were seen).
int ReadSourcesFile(const std::string& sources_path, NodeId n,
                    std::vector<NodeId>* sources, size_t* invalid) {
  std::ifstream in(sources_path);
  if (!in) {
    std::fprintf(stderr, "query: cannot open --sources-file %s\n",
                 sources_path.c_str());
    return 1;
  }
  size_t line_no = 0;
  std::string line;
  while (std::getline(in, line)) {
    ++line_no;
    const std::string token = net::TrimRequestLine(line);
    if (token.empty()) continue;
    NodeId id = 0;
    std::string error;
    if (!ParseNodeId(token, n, &id, &error)) {
      std::fprintf(stderr, "%s:%zu: %s\n", sources_path.c_str(), line_no,
                   error.c_str());
      ++*invalid;
      continue;
    }
    sources->push_back(id);
  }
  if (sources->empty()) {
    std::fprintf(stderr, "query: no valid sources in %s\n",
                 sources_path.c_str());
    return *invalid > 0 ? 3 : 1;
  }
  return 0;
}

/// Renders a finished batch in the same shape for the unsharded and
/// sharded paths, so their score lines diff clean.
void PrintBatch(const std::string& algo, QueryFormat format,
                const std::vector<NodeId>& sources,
                const std::vector<ScoreList>& topk, size_t invalid,
                double total_seconds, const QueryCost& cost) {
  if (format == QueryFormat::kTsv) {
    std::printf("meta\talgo\t%s\n", algo.c_str());
    std::printf("meta\tqueries\t%zu\n", sources.size());
    std::printf("meta\tinvalid\t%zu\n", invalid);
    std::printf("meta\tbatch_s\t%.6f\n", total_seconds);
    std::printf("meta\tp50_ms\t%.6f\n", cost.latency_p50_seconds * 1e3);
    std::printf("meta\tp95_ms\t%.6f\n", cost.latency_p95_seconds * 1e3);
    std::printf("meta\tp99_ms\t%.6f\n", cost.latency_p99_seconds * 1e3);
    for (size_t i = 0; i < sources.size(); ++i) {
      for (const auto& [v, s] : topk[i]) {
        std::printf("score\t%u\t%u\t%.17g\n", sources[i], v, s);
      }
    }
  } else {
    for (size_t i = 0; i < sources.size(); ++i) {
      std::printf("source %u:\n", sources[i]);
      for (const auto& [v, s] : topk[i]) {
        std::printf("  %-10u %.6f\n", v, s);
      }
    }
    std::printf(
        "batch: queries=%zu invalid=%zu total_s=%.3f p50_ms=%.3f "
        "p95_ms=%.3f p99_ms=%.3f\n",
        sources.size(), invalid, total_seconds,
        cost.latency_p50_seconds * 1e3, cost.latency_p95_seconds * 1e3,
        cost.latency_p99_seconds * 1e3);
  }
}

/// Batch mode of `query`: answers every valid node id in `sources_path`
/// through the shared thread pool and reports latency percentiles. Invalid
/// lines are reported individually on stderr and skipped; any such line
/// turns the exit code into 3 (0 = clean batch, 1 = I/O failure).
int RunBatchQuery(SingleSourceSimRank& engine, const std::string& sources_path,
                  QueryFormat format, uint32_t k, size_t threads) {
  std::vector<NodeId> sources;
  size_t invalid = 0;
  if (const int rc = ReadSourcesFile(sources_path, engine.node_count(),
                                     &sources, &invalid);
      rc != 0) {
    return rc;
  }

  WallTimer timer;
  const BatchQueryResult batch = BatchQueryWithStats(engine, sources, threads);
  const double total_seconds = timer.Seconds();
  std::vector<ScoreList> topk(sources.size());
  for (size_t i = 0; i < sources.size(); ++i) {
    topk[i] = TopK(batch.scores[i], k, sources[i]);
  }
  PrintBatch(engine.name(), format, sources, topk, invalid, total_seconds,
             batch.cost);
  return invalid > 0 ? 3 : 0;
}

/// Batch mode of `query --manifest`: the same request stream pushed through
/// the shard router. Global positional seeds make the scores bit-identical
/// to RunBatchQuery over the same sources at any shard count.
int RunBatchQueryManifest(ShardRouter& router, const std::string& algo,
                          const std::string& sources_path, QueryFormat format,
                          uint32_t k) {
  std::vector<NodeId> sources;
  size_t invalid = 0;
  if (const int rc =
          ReadSourcesFile(sources_path, router.node_count(), &sources,
                          &invalid);
      rc != 0) {
    return rc;
  }

  WallTimer timer;
  std::vector<std::future<QueryResult>> futures;
  futures.reserve(sources.size());
  for (const NodeId source : sources) futures.push_back(router.Submit(source));
  std::vector<ScoreList> topk(sources.size());
  for (size_t i = 0; i < sources.size(); ++i) {
    QueryResult result = futures[i].get();
    if (!result.status.ok()) {
      std::fprintf(stderr, "%s\n", result.status.ToString().c_str());
      return 1;
    }
    topk[i] = TopK(result.scores, k, sources[i]);
  }
  const double total_seconds = timer.Seconds();
  PrintBatch(algo, format, sources, topk, invalid, total_seconds,
             router.Stats().aggregate_cost);
  return invalid > 0 ? 3 : 0;
}

int CmdQuery(const Flags& flags) {
  const std::string manifest_path = flags.Get("manifest", "");
  const std::string graph_path = flags.Get("graph", "");
  if (!manifest_path.empty()) {
    // The manifest already records the graph, index, engine, and params; a
    // conflicting flag is a confused invocation, not an override request.
    for (const char* conflicting : {"graph", "index", "algo", "params"}) {
      if (flags.HasValue(conflicting)) {
        std::fprintf(stderr,
                     "query: --manifest is mutually exclusive with --%s\n",
                     conflicting);
        return 2;
      }
    }
  } else if (graph_path.empty()) {
    std::fprintf(stderr, "query: --graph or --manifest is required\n");
    return 2;
  }
  // Validate the cheap inputs — the algo name, its config, --source, --k,
  // --format — before graph loading / index loading / preprocessing, so a
  // bad flag fails fast with exit 2 instead of after minutes of work.
  const std::string algo = flags.Get("algo", "prsim");
  const EngineInfo* info = EngineRegistry::Global().Find(algo);
  if (info == nullptr) {
    std::fprintf(stderr,
                 "query: unknown --algo '%s' (run `prsim_cli algos`)\n",
                 algo.c_str());
    return 2;
  }
  const std::string format_name = flags.Get("format", "text");
  QueryFormat format = QueryFormat::kText;
  if (format_name == "tsv") {
    format = QueryFormat::kTsv;
  } else if (format_name == "json") {
    format = QueryFormat::kJson;
  } else if (format_name != "text") {
    std::fprintf(stderr,
                 "query: unknown --format '%s' (text, tsv, or json)\n",
                 format_name.c_str());
    return 2;
  }
  const std::string sources_path = flags.Get("sources-file", "");
  if (!sources_path.empty() && flags.HasValue("source")) {
    std::fprintf(stderr,
                 "query: --source and --sources-file are mutually "
                 "exclusive\n");
    return 2;
  }
  // The result cache lives in the QueryService layer; the direct engine
  // path answers one-shot and has nothing to cache. Negative or malformed
  // values exit 2 inside GetInt.
  if (flags.HasValue("cache-mb") && manifest_path.empty()) {
    std::fprintf(stderr, "query: --cache-mb requires --manifest\n");
    return 2;
  }
  if (!sources_path.empty() && format == QueryFormat::kJson) {
    std::fprintf(stderr,
                 "query: --sources-file supports --format text or tsv\n");
    return 2;
  }

  if (!manifest_path.empty()) {
    if (flags.HasValue("threads") && flags.GetInt("threads", 1) == 0) {
      std::fprintf(stderr, "--threads must be >= 1\n");
      return 2;
    }
    const auto source = static_cast<NodeId>(flags.GetUint32("source", 0));
    const uint32_t k = flags.GetUint32("k", 20);
    FILE* progress = format == QueryFormat::kText ? stdout : stderr;

    ShardRouterOptions router_options;
    router_options.threads_per_shard =
        static_cast<size_t>(flags.GetInt("threads", 0));
    router_options.cache_bytes =
        static_cast<size_t>(flags.GetInt("cache-mb", 0)) * (size_t{1} << 20);
    WallTimer open_timer;
    auto router_result = ShardRouter::Open(manifest_path, router_options);
    if (!router_result.ok()) {
      std::fprintf(stderr, "%s\n", router_result.status().ToString().c_str());
      return 1;
    }
    std::unique_ptr<ShardRouter> router =
        std::move(router_result).ValueOrDie();
    const double open_seconds = open_timer.Seconds();
    // The engine's display name ("PRSim"), so sharded output lines diff
    // clean against the unsharded command's.
    const EngineInfo* served =
        EngineRegistry::Global().Find(router->manifest().algo);
    const std::string algo_name =
        served != nullptr ? served->display_name : router->manifest().algo;
    std::fprintf(progress, "opened %u shard(s) of %s from %s in %.2fs\n",
                 router->shard_count(), algo_name.c_str(),
                 manifest_path.c_str(), open_seconds);

    if (!sources_path.empty()) {
      return RunBatchQueryManifest(*router, algo_name, sources_path, format,
                                   k);
    }
    if (source >= router->node_count()) {
      std::fprintf(stderr, "query: --source %u out of range (n = %u)\n",
                   source, router->node_count());
      return 2;
    }
    WallTimer query_timer;
    const QueryResult result = router->QueryFresh(source);
    if (!result.status.ok()) {
      std::fprintf(stderr, "%s\n", result.status.ToString().c_str());
      return 1;
    }
    const double query_seconds = query_timer.Seconds();
    const ScoreList topk = TopK(result.scores, k, source);
    if (format == QueryFormat::kTsv) {
      PrintQueryTsv(algo_name, result.cost, source, k, open_seconds,
                    query_seconds, result.scores.size(), topk);
      return 0;
    }
    if (format == QueryFormat::kJson) {
      PrintQueryJson(algo_name, result.cost, source, k, open_seconds,
                     query_seconds, result.scores.size(), topk);
      return 0;
    }
    std::printf("query answered in %.4fs (%zu non-zero scores)\n",
                query_seconds, result.scores.size());
    std::printf("cost: algo=%s", algo_name.c_str());
    for (const auto& [name, value] : CostFields(result.cost)) {
      std::printf(" %s=%llu", name, value);
    }
    std::printf("\n");
    for (const auto& [v, s] : topk) {
      std::printf("%-10u %.6f\n", v, s);
    }
    return 0;
  }

  EngineConfig config;
  if (const int rc = BuildEngineConfig(flags, &config); rc != 0) return rc;
  if (Status st = EngineRegistry::Global().Validate(algo, config); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 2;
  }
  const auto source = static_cast<NodeId>(flags.GetUint32("source", 0));
  const uint32_t k = flags.GetUint32("k", 20);
  const std::string index_path = flags.Get("index", "");
  if (!index_path.empty() && !info->has_persistent_index) {
    std::fprintf(stderr,
                 "query: --algo %s has no persistent index, so --index is "
                 "not supported\n",
                 info->name.c_str());
    return 2;
  }

  auto graph_result = LoadAnyGraph(graph_path);
  if (!graph_result.ok()) {
    std::fprintf(stderr, "%s\n", graph_result.status().ToString().c_str());
    return 1;
  }
  Graph graph = std::move(graph_result).ValueOrDie();
  if (sources_path.empty() && source >= graph.n()) {
    std::fprintf(stderr, "query: --source %u out of range (n = %u)\n", source,
                 graph.n());
    return 2;
  }

  auto engine_result = EngineRegistry::Global().Create(algo, graph, config);
  engine_result.status().Abort();  // config already validated above
  std::unique_ptr<SingleSourceSimRank> engine =
      std::move(engine_result).ValueOrDie();

  // In machine-readable modes the progress lines move to stderr so stdout
  // carries nothing but the tsv/json payload.
  FILE* progress = format == QueryFormat::kText ? stdout : stderr;
  WallTimer prep_timer;
  if (!index_path.empty()) {
    Status st = engine->LoadIndex(index_path);
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    std::fprintf(progress, "loaded index from %s in %.2fs\n",
                 index_path.c_str(), prep_timer.Seconds());
  } else {
    Status st = engine->Preprocess();
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    std::fprintf(progress, "preprocessed in %.2fs (no --index given)\n",
                 prep_timer.Seconds());
  }
  const double preprocess_seconds = prep_timer.Seconds();

  if (!sources_path.empty()) {
    return RunBatchQuery(*engine, sources_path, format, k,
                         static_cast<size_t>(flags.GetInt("threads", 0)));
  }

  WallTimer query_timer;
  ScoreList scores = engine->Query(source);
  const double query_seconds = query_timer.Seconds();
  const ScoreList topk = TopK(scores, k, source);
  if (format == QueryFormat::kTsv) {
    PrintQueryTsv(engine->name(), engine->last_query_cost(), source, k,
                  preprocess_seconds, query_seconds, scores.size(), topk);
    return 0;
  }
  if (format == QueryFormat::kJson) {
    PrintQueryJson(engine->name(), engine->last_query_cost(), source, k,
                   preprocess_seconds, query_seconds, scores.size(), topk);
    return 0;
  }
  std::printf("query answered in %.4fs (%zu non-zero scores)\n",
              query_seconds, scores.size());
  std::printf("cost: algo=%s", engine->name().c_str());
  for (const auto& [name, value] : CostFields(engine->last_query_cost())) {
    std::printf(" %s=%llu", name, value);
  }
  std::printf("\n");
  for (const auto& [v, s] : topk) {
    std::printf("%-10u %.6f\n", v, s);
  }
  return 0;
}

void PrintServedStats(const ServiceStats& stats) {
  std::printf(
      "served queries=%llu failed=%llu rejected=%llu p50_ms=%.3f "
      "p95_ms=%.3f p99_ms=%.3f\n",
      static_cast<unsigned long long>(stats.completed),
      static_cast<unsigned long long>(stats.failed),
      static_cast<unsigned long long>(stats.rejected), stats.p50_seconds * 1e3,
      stats.p95_seconds * 1e3, stats.p99_seconds * 1e3);
}

/// Arms the global fault injector for `serve` from --faults/--fault-seed,
/// falling back to PRSIM_FAULTS/PRSIM_FAULT_SEED (flags win). Returns 0
/// (with *armed saying whether any fault points are live) or exit code 2
/// on a malformed spec. Only the CLI consults the environment — library
/// code and test binaries never read it, so a stray variable cannot
/// silently perturb a test run.
int ConfigureServeFaults(const Flags& flags, bool* armed) {
  *armed = false;
  std::string spec = flags.Get("faults", "");
  if (!flags.HasValue("faults")) {
    if (const char* env = std::getenv("PRSIM_FAULTS")) spec = env;
  }
  if (spec.empty()) return 0;
  uint64_t seed = flags.GetInt("fault-seed", 0);
  if (!flags.HasValue("fault-seed")) {
    if (const char* env = std::getenv("PRSIM_FAULT_SEED")) {
      if (!ParseUint64(env, &seed)) {
        std::fprintf(stderr, "serve: invalid PRSIM_FAULT_SEED '%s'\n", env);
        return 2;
      }
    }
  }
  if (Status st = FaultInjector::Global().Configure(spec, seed); !st.ok()) {
    std::fprintf(stderr, "serve: %s\n", st.ToString().c_str());
    return 2;
  }
  *armed = true;
  return 0;
}

/// Graceful-shutdown signal plumbing for `serve`. The handler only sets a
/// flag and pokes a pipe: the stdin loop notices because the blocked read
/// returns EINTR (no SA_RESTART), the TCP path because its wait poll()s
/// the pipe.
volatile std::sig_atomic_t g_serve_stop = 0;
int g_serve_signal_pipe = -1;

void HandleServeSignal(int) {
  g_serve_stop = 1;
  if (g_serve_signal_pipe >= 0) {
    const char byte = 1;
    [[maybe_unused]] ssize_t n = write(g_serve_signal_pipe, &byte, 1);
  }
}

void InstallServeSignalHandlers() {
  struct sigaction action {};
  action.sa_handler = HandleServeSignal;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;  // no SA_RESTART: blocked stdin reads must EINTR out
  sigaction(SIGINT, &action, nullptr);
  sigaction(SIGTERM, &action, nullptr);
  // Dead clients must surface as write errors on their own connection, not
  // kill the whole server.
  std::signal(SIGPIPE, SIG_IGN);
}

/// The stdin framing of the shared serve loop (net/serve_loop): pipelined
/// submission with answers printed in submission order, each flushed before
/// the next read. std::getline delivers a final line even without a
/// trailing newline, so piped clients that omit it still get an answer.
/// Returns the number of failed lines.
size_t ServeStdinLoop(NodeId n, uint32_t default_k, size_t window,
                      const net::SubmitFn& submit) {
  net::LineTransport transport;
  transport.read_line = [](std::string* line) {
    return g_serve_stop == 0 &&
           static_cast<bool>(std::getline(std::cin, *line));
  };
  transport.write_line = [](const std::string& line) {
    std::fputs(line.c_str(), stdout);
    std::fputc('\n', stdout);
    std::fflush(stdout);
  };
  transport.report_error = [](size_t line_no, const std::string& message) {
    std::fprintf(stderr, "line %zu: %s\n", line_no, message.c_str());
  };
  return net::ServeLineLoop(n, default_k, window, submit, transport);
}

/// Everything `serve` needs behind a transport: the submit hook, the node
/// count for request validation, and the stats snapshot for the exit
/// report. Members are declared owner-last so the graph outlives the
/// service holding a reference to it.
struct ServeBackend {
  std::unique_ptr<Graph> graph;
  std::unique_ptr<QueryService> service;
  std::unique_ptr<ShardRouter> router;
  NodeId n = 0;
  net::SubmitFn submit;
  std::function<ServiceStats()> stats;
};

/// Builds the unsharded or sharded backend from the serve flags. Returns 0
/// and fills *backend on success, else the exit code (the ready banner has
/// already been printed to stderr).
int OpenServeBackend(const Flags& flags, const std::string& manifest_path,
                     const std::string& graph_path, ServeBackend* backend) {
  const size_t max_queue = static_cast<size_t>(flags.GetInt("queue", 1024));
  if (max_queue == 0) {
    std::fprintf(stderr, "serve: --queue must be positive\n");
    return 2;
  }
  if (flags.HasValue("threads") && flags.GetInt("threads", 1) == 0) {
    std::fprintf(stderr, "--threads must be >= 1\n");
    return 2;
  }

  // Negative or malformed --cache-mb values exit 2 inside GetInt.
  const size_t cache_bytes =
      static_cast<size_t>(flags.GetInt("cache-mb", 0)) * (size_t{1} << 20);

  if (!manifest_path.empty()) {
    ShardRouterOptions options;
    options.threads_per_shard =
        static_cast<size_t>(flags.GetInt("threads", 0));
    options.max_queue = max_queue;
    options.cache_bytes = cache_bytes;
    options.degraded = flags.Has("degraded");
    if (flags.Has("reject")) {
      options.backpressure = QueryServiceOptions::Backpressure::kReject;
    }
    WallTimer start_timer;
    auto router_result = ShardRouter::Open(manifest_path, options);
    if (!router_result.ok()) {
      std::fprintf(stderr, "%s\n", router_result.status().ToString().c_str());
      return 1;
    }
    backend->router = std::move(router_result).ValueOrDie();
    ShardRouter* router = backend->router.get();
    backend->n = router->node_count();
    backend->submit = [router](QueryRequest request) {
      return router->SubmitRequest(std::move(request));
    };
    backend->stats = [router] { return router->Stats(); };
    std::fprintf(stderr,
                 "serving %s: %u shard(s), n=%u, ready in %.2fs; requests "
                 "are \"<source> [k]\"\n",
                 router->manifest().algo.c_str(), router->shard_count(),
                 router->node_count(), start_timer.Seconds());
    return 0;
  }

  const std::string algo = flags.Get("algo", "prsim");
  const EngineInfo* info = EngineRegistry::Global().Find(algo);
  if (info == nullptr) {
    std::fprintf(stderr,
                 "serve: unknown --algo '%s' (run `prsim_cli algos`)\n",
                 algo.c_str());
    return 2;
  }
  const std::string index_path = flags.Get("index", "");
  if (!index_path.empty() && !info->has_persistent_index) {
    std::fprintf(stderr,
                 "serve: --algo %s has no persistent index, so --index is "
                 "not supported\n",
                 info->name.c_str());
    return 2;
  }
  EngineConfig config;
  if (const int rc = BuildEngineConfig(flags, &config); rc != 0) return rc;
  if (Status st = EngineRegistry::Global().Validate(algo, config); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 2;
  }

  auto graph_result = LoadAnyGraph(graph_path);
  if (!graph_result.ok()) {
    std::fprintf(stderr, "%s\n", graph_result.status().ToString().c_str());
    return 1;
  }
  backend->graph =
      std::make_unique<Graph>(std::move(graph_result).ValueOrDie());

  QueryServiceOptions options;
  options.threads = static_cast<size_t>(flags.GetInt("threads", 0));
  options.max_queue = max_queue;
  options.cache_bytes = cache_bytes;
  options.degraded = flags.Has("degraded");
  if (flags.Has("reject")) {
    options.backpressure = QueryServiceOptions::Backpressure::kReject;
  }
  backend->service = std::make_unique<QueryService>(options);
  WallTimer start_timer;
  Status st = index_path.empty()
                  ? backend->service->AddEngine(info->name, *backend->graph,
                                                config)
                  : backend->service->AddEngineFromIndex(
                        info->name, *backend->graph, config, index_path);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  backend->n = backend->graph->n();
  QueryService* service = backend->service.get();
  backend->submit = [service](QueryRequest request) {
    return service->Submit(std::move(request));
  };
  backend->stats = [service] { return service->Stats(); };
  std::fprintf(stderr,
               "serving %s: n=%u, %zu workers, ready in %.2fs; requests "
               "are \"<source> [k]\"\n",
               info->name.c_str(), backend->n, service->threads(),
               start_timer.Seconds());
  return 0;
}

/// Long-lived query service behind the stdin or TCP transport. One request
/// per line / frame; invalid requests get per-request errors and the
/// service keeps serving. SIGINT/SIGTERM drain and exit 0; a clean EOF
/// exits 3 if any line failed, 0 otherwise.
int CmdServe(const Flags& flags) {
  const std::string manifest_path = flags.Get("manifest", "");
  const std::string graph_path = flags.Get("graph", "");
  if (!manifest_path.empty()) {
    for (const char* conflicting : {"graph", "index", "algo", "params"}) {
      if (flags.HasValue(conflicting)) {
        std::fprintf(stderr,
                     "serve: --manifest is mutually exclusive with --%s\n",
                     conflicting);
        return 2;
      }
    }
  } else if (graph_path.empty()) {
    std::fprintf(stderr, "serve: --graph or --manifest is required\n");
    return 2;
  }
  const bool use_stdin = flags.Has("stdin");
  const bool use_listen = flags.HasValue("listen");
  if (use_stdin == use_listen) {
    std::fprintf(stderr,
                 "serve: exactly one transport is required: --stdin or "
                 "--listen PORT\n");
    return 2;
  }
  const uint64_t listen_port = flags.GetInt("listen", 0);
  if (use_listen && listen_port > 65535) {
    std::fprintf(stderr, "serve: --listen port must be <= 65535\n");
    return 2;
  }
  const uint32_t default_k = flags.GetUint32("k", 20);
  const size_t max_connections =
      static_cast<size_t>(flags.GetInt("max-connections", 64));
  if (use_listen && max_connections == 0) {
    std::fprintf(stderr, "serve: --max-connections must be positive\n");
    return 2;
  }

  // Arm fault injection before the backend loads, so artifact-read fault
  // points can exercise the cold-start error paths too.
  bool faults_armed = false;
  if (const int rc = ConfigureServeFaults(flags, &faults_armed); rc != 0) {
    return rc;
  }

  ServeBackend backend;
  if (const int rc =
          OpenServeBackend(flags, manifest_path, graph_path, &backend);
      rc != 0) {
    return rc;
  }
  const size_t window = static_cast<size_t>(flags.GetInt("queue", 1024));

  if (use_stdin) {
    InstallServeSignalHandlers();
    // Never submit beyond the service's own queue bound: stdin is a single
    // well-behaved client, so overrunning it would make --reject shed our
    // own valid lines. (--reject still matters once multiple clients share
    // a service; here it simply never fires.) Positional seeds are
    // assigned at submission, so answers are independent of --threads.
    const size_t bad_lines =
        ServeStdinLoop(backend.n, default_k, window, backend.submit);
    const ServiceStats stats = backend.stats();
    PrintServedStats(stats);
    std::fprintf(stderr, "%s\n", ServiceStatsJson(stats, "stdin").c_str());
    if (faults_armed) {
      std::fprintf(stderr, "%s\n",
                   FaultInjector::Global().StatsJson().c_str());
    }
    if (g_serve_stop != 0) return 0;  // graceful signal shutdown
    return bad_lines > 0 ? 3 : 0;
  }

  // TCP transport. The signal pipe must exist before the handlers that
  // poke it are installed.
  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) {
    std::fprintf(stderr, "serve: pipe: %s\n", std::strerror(errno));
    return 1;
  }
  UniqueFd signal_read(pipe_fds[0]);
  UniqueFd signal_write(pipe_fds[1]);
  g_serve_signal_pipe = signal_write.get();
  InstallServeSignalHandlers();

  net::TcpServerOptions server_options;
  server_options.port = static_cast<uint16_t>(listen_port);
  server_options.node_count = backend.n;
  server_options.default_k = default_k;
  server_options.window = window;
  server_options.max_connections = max_connections;
  server_options.idle_timeout_ms =
      static_cast<int>(flags.GetInt("idle-timeout-ms", 0));
  server_options.io_timeout_ms =
      static_cast<int>(flags.GetInt("io-timeout-ms", 0));
  auto server_result =
      net::TcpServer::Start(server_options, backend.submit);
  if (!server_result.ok()) {
    std::fprintf(stderr, "%s\n", server_result.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<net::TcpServer> server =
      std::move(server_result).ValueOrDie();
  std::fprintf(stderr, "listening on 127.0.0.1:%u\n", server->port());
  std::fflush(stderr);

  // Park until SIGINT/SIGTERM; the sessions do all the work.
  while (g_serve_stop == 0) {
    pollfd wake = {signal_read.get(), POLLIN, 0};
    if (::poll(&wake, 1, -1) < 0 && errno != EINTR) break;
  }
  server->Shutdown();
  const net::TcpServerStats transport_stats = server->Stats();
  std::fprintf(stderr,
               "connections=%llu requests=%llu protocol_errors=%llu "
               "idle_closed=%llu\n",
               static_cast<unsigned long long>(transport_stats.connections),
               static_cast<unsigned long long>(transport_stats.requests),
               static_cast<unsigned long long>(
                   transport_stats.protocol_errors),
               static_cast<unsigned long long>(transport_stats.idle_closed));
  const ServiceStats stats = backend.stats();
  PrintServedStats(stats);
  std::fprintf(stderr, "%s\n", ServiceStatsJson(stats, "tcp").c_str());
  if (faults_armed) {
    std::fprintf(stderr, "%s\n",
                 FaultInjector::Global().StatsJson().c_str());
  }
  return 0;
}

/// Binary-framing TCP client: one connection, --count N pipelined copies
/// of one request (default 1), printed in the offline query formats so
/// wire answers diff against `query`. With N > 1 every response must be
/// byte-identical to the first (the cache cold/hot paths promise exactly
/// that for --fresh), so repeat traffic can be driven and checked from the
/// shell; per-response arrival times are reported for eyeballing hit
/// latency.
int CmdClient(const Flags& flags) {
  if (!flags.HasValue("port")) {
    std::fprintf(stderr, "client: --port is required\n");
    return 2;
  }
  const uint64_t port = flags.GetInt("port", 0);
  if (port == 0 || port > 65535) {
    std::fprintf(stderr, "client: --port must be in [1, 65535]\n");
    return 2;
  }
  const std::string format_name = flags.Get("format", "tsv");
  if (format_name != "tsv" && format_name != "text") {
    std::fprintf(stderr, "client: unknown --format '%s' (text or tsv)\n",
                 format_name.c_str());
    return 2;
  }
  const uint64_t count64 = flags.GetInt("count", 1);
  if (count64 == 0 || count64 > 1000) {
    // Upper bound keeps the write-all-then-read-all pipeline inside the
    // server's dispatch window and the kernel socket buffers; a sustained-
    // load driver belongs in bench_serve_throughput, not here.
    std::fprintf(stderr, "client: --count must be in [1, 1000]\n");
    return 2;
  }
  const size_t count = static_cast<size_t>(count64);
  std::signal(SIGPIPE, SIG_IGN);

  net::WireRequest request;
  request.algo = flags.Get("algo", "");
  request.source = static_cast<NodeId>(flags.GetUint32("source", 0));
  request.k = flags.GetUint32("k", 20);
  request.fresh_seed = flags.Has("fresh");
  if (flags.HasValue("deadline-ms")) {
    request.deadline_ms = flags.GetInt("deadline-ms", 0);
  }
  // --timeout-ms bounds the connect and the wait for each response;
  // --retries N re-attempts the whole exchange with jittered exponential
  // backoff, but ONLY on failures where the server provably did not start
  // answering (connect failure, timeout or clean EOF before the first
  // response frame). A partial reply is never retried: the server may have
  // committed work, and silently re-issuing would hide real flakiness.
  const int timeout_ms = static_cast<int>(flags.GetInt("timeout-ms", 0));
  const uint64_t retries = flags.GetInt("retries", 0);

  std::vector<char> request_payload;
  net::EncodeRequest(request, &request_payload);
  std::vector<char> payload;
  std::vector<char> first_payload;
  std::vector<double> arrival_seconds(count, 0);
  WallTimer timer;
  Status st;
  uint64_t backoff_state = (static_cast<uint64_t>(port) << 32) ^
                           request.source ^ 0x9e3779b97f4a7c15ull;
  for (uint64_t attempt = 0;; ++attempt) {
    st = Status::OK();
    bool retryable = false;
    size_t responses = 0;
    auto fd_result = ConnectTcp(static_cast<uint16_t>(port),
                                timeout_ms > 0 ? timeout_ms : -1);
    if (!fd_result.ok()) {
      st = fd_result.status();
      retryable = true;
    } else {
      UniqueFd fd = std::move(fd_result).ValueOrDie();
      timer = WallTimer();
      // Pipeline: all requests go out before the first response is read —
      // the server's per-connection dispatch window keeps them in order.
      st = WriteAll(fd.get(), net::kBinaryMagic, sizeof(net::kBinaryMagic));
      for (size_t i = 0; st.ok() && i < count; ++i) {
        st = net::WriteFrame(fd.get(), request_payload);
      }
      for (size_t i = 0; st.ok() && i < count; ++i) {
        bool eof = false;
        if (timeout_ms > 0) {
          st = WaitFdEvent(fd.get(), POLLIN, timeout_ms);
          if (st.code() == StatusCode::kDeadlineExceeded) {
            st = Status::DeadlineExceeded("no response within " +
                                          std::to_string(timeout_ms) +
                                          "ms");
            // The timeout fired before this frame delivered a byte; with
            // no frames received at all, nothing was consumed.
            retryable = responses == 0;
            break;
          }
        }
        if (st.ok()) st = net::ReadFrame(fd.get(), &payload, &eof);
        if (st.ok() && eof) {
          st = Status::IOError("server closed the connection after " +
                               std::to_string(i) + " of " +
                               std::to_string(count) + " responses");
          retryable = responses == 0;  // clean EOF, nothing received
        }
        if (!st.ok()) break;
        ++responses;
        arrival_seconds[i] = timer.Seconds();
        if (i == 0) {
          first_payload = payload;
        } else if (payload != first_payload) {
          std::fprintf(stderr,
                       "client: response %zu differs from response 0 — the "
                       "server is not answering this request "
                       "deterministically\n",
                       i);
          return 1;
        }
      }
    }
    if (st.ok()) break;
    if (!retryable || attempt >= retries) break;
    const uint64_t backoff_ms =
        (50ull << std::min<uint64_t>(attempt, 6)) +
        SplitMix64(backoff_state) % 50;
    std::fprintf(stderr, "client: %s; retry %llu/%llu in %llums\n",
                 st.ToString().c_str(),
                 static_cast<unsigned long long>(attempt + 1),
                 static_cast<unsigned long long>(retries),
                 static_cast<unsigned long long>(backoff_ms));
    std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
  }
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  auto response_result = net::DecodeResponse(first_payload);
  if (!response_result.ok()) {
    std::fprintf(stderr, "%s\n",
                 response_result.status().ToString().c_str());
    return 1;
  }
  const net::WireResponse response = std::move(response_result).ValueOrDie();
  const double roundtrip_seconds = arrival_seconds[0];
  if (response.status_code != 0) {
    std::fprintf(stderr, "server error (%s): %s\n",
                 StatusCodeToString(
                     static_cast<StatusCode>(response.status_code)),
                 response.error.c_str());
    return 1;
  }
  if (format_name == "tsv") {
    std::printf("meta\tsource\t%u\n", response.source);
    std::printf("meta\tk\t%u\n", request.k);
    std::printf("meta\troundtrip_s\t%.6f\n", roundtrip_seconds);
    if (count > 1) {
      // Extra meta rows only in the multi-shot shape: the single-shot
      // output stays byte-compatible with what `query --format tsv` diffs
      // against.
      std::printf("meta\tcount\t%zu\n", count);
      std::printf("meta\ttotal_s\t%.6f\n", arrival_seconds[count - 1]);
      for (size_t i = 0; i < count; ++i) {
        std::printf("rtt\t%zu\t%.6f\n", i, arrival_seconds[i]);
      }
    }
    for (const auto& [node, score] : response.scores) {
      std::printf("score\t%u\t%.17g\n", node, score);
    }
  } else {
    if (count > 1) {
      std::printf(
          "%zu pipelined queries answered in %.4fs (all byte-identical; "
          "first %.4fs, %zu scores)\n",
          count, arrival_seconds[count - 1], roundtrip_seconds,
          response.scores.size());
    } else {
      std::printf("query answered in %.4fs (%zu scores)\n",
                  roundtrip_seconds, response.scores.size());
    }
    for (const auto& [node, score] : response.scores) {
      std::printf("%-10u %.6f\n", node, score);
    }
  }
  return 0;
}

int CmdGenerate(const Flags& flags) {
  const std::string out_path = flags.Get("out", "");
  if (out_path.empty()) {
    std::fprintf(stderr, "generate: --out is required\n");
    return 2;
  }
  const std::string model = flags.Get("model", "chunglu");
  Result<Graph> graph = Status::InvalidArgument("unknown model: " + model);
  if (model == "chunglu") {
    ChungLuOptions options;
    options.n = flags.GetUint32("n", 100000);
    options.avg_degree = flags.GetDouble("degree", 10);
    options.gamma_out = flags.GetDouble("gamma", 2.0);
    options.gamma_in = flags.GetDouble("gamma_in", -1);
    options.undirected = flags.undirected();
    options.seed = flags.GetInt("seed", 1);
    graph = GenerateChungLu(options);
  } else if (model == "er") {
    ErdosRenyiOptions options;
    options.n = flags.GetUint32("n", 100000);
    options.avg_degree = flags.GetDouble("degree", 10);
    options.undirected = flags.undirected();
    options.seed = flags.GetInt("seed", 1);
    graph = GenerateErdosRenyi(options);
  } else if (model == "ba") {
    BarabasiAlbertOptions options;
    options.n = flags.GetUint32("n", 100000);
    options.edges_per_node = flags.GetUint32("degree", 5);
    options.seed = flags.GetInt("seed", 1);
    graph = GenerateBarabasiAlbert(options);
  }
  if (!graph.ok()) {
    std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
    return 1;
  }
  Status st = EndsWith(out_path, ".bin")
                  ? GraphIO::SaveBinary(graph.ValueOrDie(), out_path)
                  : SaveEdgeListText(graph.ValueOrDie(), out_path);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s: n=%u m=%llu\n", out_path.c_str(),
              graph.ValueOrDie().n(),
              static_cast<unsigned long long>(graph.ValueOrDie().m()));
  return 0;
}

void Usage() {
  std::fprintf(
      stderr,
      "usage: prsim_cli "
      "<stats|algos|index|shard-build|query|serve|client|generate> "
      "[--flags]\n"
      "  see the header comment of tools/prsim_cli.cc\n");
}

/// Parses the flags a subcommand accepts and runs it, or reports the parse
/// error with usage and exits 2.
int Dispatch(int argc, char** argv, std::initializer_list<const char*> valued,
             std::initializer_list<const char*> booleans,
             int (*cmd)(const Flags&)) {
  const Flags flags(argc, argv, 2, valued, booleans);
  if (!flags.ok()) {
    std::fprintf(stderr, "%s\n", flags.error().c_str());
    Usage();
    return 2;
  }
  return cmd(flags);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    Usage();
    return 2;
  }
  const std::string command = argv[1];
  if (command == "stats") {
    return Dispatch(argc, argv, {"graph"}, {}, CmdStats);
  }
  if (command == "algos") {
    return Dispatch(argc, argv, {}, {}, CmdAlgos);
  }
  if (command == "index") {
    return Dispatch(argc, argv,
                    {"graph", "out", "algo", "params", "eps", "c", "j0",
                     "seed", "threads"},
                    {}, CmdIndex);
  }
  if (command == "shard-build") {
    return Dispatch(argc, argv,
                    {"graph", "out-dir", "shards", "strategy", "algo",
                     "params", "eps", "c", "j0", "seed", "threads"},
                    {}, CmdShardBuild);
  }
  if (command == "query") {
    return Dispatch(argc, argv,
                    {"graph", "index", "manifest", "source", "sources-file",
                     "eps", "c", "k", "seed", "algo", "params", "j0", "alpha",
                     "rounds", "threads", "format", "cache-mb"},
                    {"paper-constants"}, CmdQuery);
  }
  if (command == "serve") {
    return Dispatch(argc, argv,
                    {"graph", "index", "manifest", "eps", "c", "k", "seed",
                     "algo", "params", "j0", "alpha", "rounds", "threads",
                     "queue", "listen", "max-connections", "cache-mb",
                     "faults", "fault-seed", "idle-timeout-ms",
                     "io-timeout-ms"},
                    {"stdin", "reject", "paper-constants", "degraded"},
                    CmdServe);
  }
  if (command == "client") {
    return Dispatch(argc, argv,
                    {"port", "source", "k", "algo", "format", "count",
                     "timeout-ms", "retries", "deadline-ms"},
                    {"fresh"}, CmdClient);
  }
  if (command == "generate") {
    return Dispatch(argc, argv,
                    {"out", "model", "n", "degree", "gamma", "gamma_in",
                     "seed"},
                    {"undirected"}, CmdGenerate);
  }
  Usage();
  return 2;
}
